"""Command line interface to the sp-system reproduction.

The original sp-system is operated through shell scripts and cron entries on
the DESY machines; the reproduction offers an equivalent command line front
end so the framework can be driven without writing Python::

    python -m repro.cli describe
    python -m repro.cli validate --experiment H1 --configuration SL6_64bit_gcc4.4
    python -m repro.cli campaign --scale 0.15 --output /tmp/sp-storage
    python -m repro.cli campaign --workers 4 --policy critical-path --output /tmp/sp-storage
    python -m repro.cli campaign --workers 4 --backend threads
    python -m repro.cli campaign --spec my-campaign.json --cache-budget-mb 16
    python -m repro.cli campaign --no-cache
    python -m repro.cli cache-stats --cache-dir /tmp/sp-storage
    python -m repro.cli campaign --record-history --output /tmp/sp-storage
    python -m repro.cli history trends --storage-dir /tmp/sp-storage
    python -m repro.cli history diff --storage-dir /tmp/sp-storage \
        --from-campaign campaign-0001 --to-campaign campaign-0002
    python -m repro.cli history regressions --storage-dir /tmp/sp-storage
    python -m repro.cli migrate-plan --experiment H1 --target SL7
    python -m repro.cli levels
    python -m repro.cli submit-async --storage-dir /tmp/sp-service \
        --tenant h1-offline --workers 2
    python -m repro.cli serve --storage-dir /tmp/sp-service \
        --tenant h1-offline:2 --tenant zeus:1:0.5:2
    python -m repro.cli queue status --storage-dir /tmp/sp-service
    python -m repro.cli queue cancel --storage-dir /tmp/sp-service \
        --submission sub-000003

The ``serve`` / ``submit-async`` / ``queue`` commands drive the
validation-as-a-service daemon (:mod:`repro.service`): ``submit-async``
persists a campaign submission into the multi-tenant queue without
executing it, ``serve`` resumes the persisted queue and drains it under
fair-share scheduling (publishing heartbeat telemetry and the live
``reports/service.html`` dashboard), and ``queue`` inspects or cancels
persisted submissions without provisioning a system.

Every command provisions a fresh in-memory sp-system (the library is fully
deterministic, so this is cheap and reproducible); ``--output`` persists the
common storage to disk for inspection afterwards.  A ``campaign`` run whose
``--cache-dir`` (default: ``--output``) holds a previous run's persisted
storage warm-starts its build cache from that snapshot, so repeated
campaigns against the same output directory stop recompiling unchanged
packages.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro._common import ReproError, format_table
from repro.core.levels import preservation_table
from repro.core.spsystem import SPSystem
from repro.history import (
    RegressionDetector,
    ValidationHistoryLedger,
    diff_campaigns,
    diff_rows,
    regression_rows,
    trend_rows,
)
from repro.plugins import CAMPAIGN_PLUGINS, InterventionStore
from repro.scheduler.backends import EXECUTION_BACKENDS
from repro.scheduler.cache import BuildCache
from repro.scheduler.pool import SCHEDULING_POLICIES
from repro.scheduler.spec import ON_DEADLINE_MODES, CampaignSpec
from repro.storage.common_storage import CommonStorage
from repro.telemetry import (
    DEFAULT_THRESHOLD,
    DEFAULT_TRENDS_DIR,
    DEFAULT_WINDOW,
    Telemetry,
    check_trends,
    prometheus_text,
)
from repro.environment.configuration import next_generation_configuration
from repro.experiments import (
    build_h1_experiment,
    build_hera_experiments,
    build_hermes_experiment,
    build_zeus_experiment,
)
from repro.migration.planner import MigrationPlanner
from repro.reporting.export import catalog_to_rows, rows_to_text
from repro.reporting.summary import (
    ValidationSummaryBuilder,
    intervention_rows,
    lifecycle_event_rows,
)
from repro.reporting.webpages import StatusPageGenerator
from repro.service import (
    PRIORITY_LANES,
    SERVICE_NAMESPACE,
    TenantLedger,
    TenantPolicy,
    ValidationService,
    cancel_persisted,
    load_submissions,
    snapshot_rows,
    submission_rows,
    tenant_rows,
)


_EXPERIMENT_BUILDERS = {
    "H1": build_h1_experiment,
    "ZEUS": build_zeus_experiment,
    "HERMES": build_hermes_experiment,
}


def _positive_int(text: str) -> int:
    """Argparse type for flags that must be strictly positive integers."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _positive_float(text: str) -> float:
    """Argparse type for flags that must be strictly positive numbers."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid number: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive (got {value})")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sp",
        description="sp-system: validation framework for HEP data preservation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    levels = subparsers.add_parser("levels", help="print the DPHEP preservation levels (Table 1)")
    levels.set_defaults(handler=_cmd_levels)

    describe = subparsers.add_parser("describe", help="describe the provisioned sp-system")
    describe.add_argument("--scale", type=float, default=0.15,
                          help="scale factor for the experiment suites (default 0.15)")
    describe.set_defaults(handler=_cmd_describe)

    validate = subparsers.add_parser("validate", help="run one validation cycle")
    validate.add_argument("--experiment", required=True, choices=sorted(_EXPERIMENT_BUILDERS))
    validate.add_argument("--configuration", default="SL6_64bit_gcc4.4",
                          help="configuration key (default SL6_64bit_gcc4.4)")
    validate.add_argument("--scale", type=float, default=0.15)
    validate.add_argument("--reference-configuration", default=None,
                          help="run a reference validation on this configuration first")
    validate.add_argument("--output", default=None,
                          help="directory to persist the common storage to")
    validate.set_defaults(handler=_cmd_validate)

    campaign = subparsers.add_parser(
        "campaign", help="validate all HERA experiments on all configurations"
    )
    campaign.add_argument("--scale", type=float, default=0.15)
    campaign.add_argument("--rounds", type=_positive_int, default=1,
                          help="number of repeated campaign rounds (default 1)")
    campaign.add_argument("--workers", type=_positive_int, default=1,
                          help="worker-pool size (default 1)")
    campaign.add_argument("--batch-size", type=_positive_int, default=4,
                          help="standalone tests grouped per worker slot (default 4)")
    campaign.add_argument("--policy", default="fifo",
                          choices=sorted(SCHEDULING_POLICIES),
                          help="worker-pool scheduling policy (default fifo)")
    campaign.add_argument("--backend", default="simulated",
                          choices=sorted(EXECUTION_BACKENDS),
                          help="execution backend: 'simulated' replays the "
                               "deterministic pool simulation, 'threads' really "
                               "dispatches the campaign DAG on a wall-clock "
                               "thread pool, 'processes' dispatches the same DAG "
                               "but runs every (picklable) build task in a child "
                               "process outside the GIL, 'sharded' partitions "
                               "the campaign's cells across worker processes "
                               "that each journal into a private storage "
                               "directory, merged back on completion "
                               "(default simulated)")
    campaign.add_argument("--shards", type=_positive_int, default=None,
                          help="shard count for the sharded backend (implies "
                               "--backend sharded): cells are partitioned "
                               "across this many worker processes, each "
                               "persisting its build results as append-only "
                               "journal segments in a private directory; the "
                               "shards are merged on completion by replaying "
                               "their journals into the parent build cache — "
                               "idempotent by content-addressed key, so the "
                               "merged output stays bit-identical to the "
                               "simulated backend")
    campaign.add_argument("--spec", default=None, metavar="FILE",
                          help="submit the CampaignSpec JSON document in FILE "
                               "instead of building one from the flags above "
                               "(--output/--cache-dir/--cache-budget-mb still apply)")
    campaign.add_argument("--deadline-seconds", type=float, default=None,
                          help="campaign deadline; late cells are reported")
    campaign.add_argument("--on-deadline", default=None,
                          choices=list(ON_DEADLINE_MODES),
                          help="what a blown deadline does: 'report' (the "
                               "default) only marks late cells, 'abort' "
                               "cancels still-queued work via the lifecycle "
                               "bus's deadline-abort policy — completed "
                               "cells keep their (bit-identical) run "
                               "documents")
    campaign.add_argument("--event-log", default=None, metavar="PATH",
                          help="append every fired lifecycle event "
                               "(cell_completed, campaign_finished, "
                               "regression_detected, ...) as one JSON line "
                               "to PATH")
    campaign.add_argument("--plugin", action="append", default=None,
                          metavar="NAME", choices=sorted(CAMPAIGN_PLUGINS),
                          help="attach a named lifecycle plugin for this "
                               "submission (repeatable); "
                               "'regression-alerts' runs the regression "
                               "detector after the campaign and opens "
                               "persisted intervention tickets "
                               "(needs --record-history)")
    campaign.add_argument("--cache-dir", default=None,
                          help="directory with a persisted build-cache snapshot to "
                               "warm-start from (defaults to --output, so repeated "
                               "runs with the same --output reuse their cache)")
    campaign.add_argument("--cache-budget-mb", type=_positive_float, default=None,
                          help="size budget for the build cache, enforced on the "
                               "live cache after every round and again before the "
                               "journal persist; least-recently-hit entries are "
                               "evicted first (the journal auto-compacts once "
                               "tombstones outnumber live entries)")
    campaign.add_argument("--no-cache", action="store_true",
                          help="disable the content-addressed build cache "
                               "entirely (cold-path debugging: every build is "
                               "compiled from scratch, nothing is warm-started "
                               "or persisted)")
    campaign.add_argument("--record-history", action="store_true",
                          help="ingest every completed cell into the "
                               "validation history ledger (the 'history' "
                               "storage namespace), enabling the history "
                               "trends/diff/regressions commands on the "
                               "persisted storage; repeated runs against the "
                               "same --output accumulate history")
    campaign.add_argument("--telemetry", action="store_true",
                          help="attach the live telemetry bundle (metrics "
                               "registry + span tracer) to the run: prints "
                               "the per-phase timing table after the summary "
                               "and, with --output, stores the "
                               "reports/telemetry.html page; science output "
                               "is byte-identical either way")
    campaign.add_argument("--output", default=None)
    campaign.set_defaults(handler=_cmd_campaign)

    cache_stats = subparsers.add_parser(
        "cache-stats",
        help="inspect a persisted build-cache journal (hit rate, shared "
             "hits, journal size)",
    )
    cache_stats.add_argument("--cache-dir", required=True,
                             help="directory holding a persisted common storage "
                                  "(the --output of a previous campaign run)")
    cache_stats.add_argument("--compact", action="store_true",
                             help="rewrite the journal from its live state "
                                  "(drops tombstones, superseded records and "
                                  "orphaned artifact payloads) and persist it "
                                  "back to --cache-dir")
    cache_stats.set_defaults(handler=_cmd_cache_stats)

    history = subparsers.add_parser(
        "history",
        help="longitudinal queries over a persisted validation history "
             "ledger (written by campaign --record-history)",
    )
    history_sub = history.add_subparsers(dest="history_command", required=True)
    trends = history_sub.add_parser(
        "trends", help="per-experiment health trends across campaigns"
    )
    trends.add_argument("--storage-dir", required=True,
                        help="directory holding a persisted common storage "
                             "with a history ledger (a previous campaign's "
                             "--output)")
    trends.add_argument("--experiment", default=None,
                        help="restrict the trend to one experiment")
    trends.set_defaults(handler=_cmd_history_trends)
    diff = history_sub.add_parser(
        "diff", help="cell-by-cell matrix diff between two campaigns"
    )
    diff.add_argument("--storage-dir", required=True)
    diff.add_argument("--from-campaign", required=True, dest="from_campaign",
                      metavar="CAMPAIGN_ID")
    diff.add_argument("--to-campaign", required=True, dest="to_campaign",
                      metavar="CAMPAIGN_ID")
    diff.set_defaults(handler=_cmd_history_diff)
    regressions = history_sub.add_parser(
        "regressions",
        help="classify every recorded cell (regressed / flaky / "
             "never-validated) and name the suspected evolution events",
    )
    regressions.add_argument("--storage-dir", required=True)
    regressions.add_argument("--quiet", action="store_true",
                             help="print only the counts line (cron "
                                  "gating: the exit code is 1 when "
                                  "regressions were found, 0 otherwise)")
    regressions.set_defaults(handler=_cmd_history_regressions)

    interventions = subparsers.add_parser(
        "interventions",
        help="list and resolve persisted intervention tickets (opened by "
             "the regression-alerts campaign plugin)",
    )
    interventions_sub = interventions.add_subparsers(
        dest="interventions_command", required=True
    )
    tickets_list = interventions_sub.add_parser(
        "list", help="list intervention tickets (open ones by default)"
    )
    tickets_list.add_argument("--storage-dir", required=True,
                              help="directory holding a persisted common "
                                   "storage with intervention tickets (a "
                                   "previous campaign's --output)")
    tickets_list.add_argument("--all", action="store_true", dest="show_all",
                              help="include resolved and closed tickets")
    tickets_list.set_defaults(handler=_cmd_interventions_list)
    resolve = interventions_sub.add_parser(
        "resolve", help="resolve an open ticket and persist the update"
    )
    resolve.add_argument("--storage-dir", required=True)
    resolve.add_argument("--ticket", required=True, metavar="TICKET_ID")
    resolve.add_argument("--resolution", required=True,
                         help="what was done to fix the regression")
    resolve.add_argument("--timestamp", type=_positive_int, default=None,
                         help="logical resolution timestamp (default: one "
                              "past the newest recorded ticket event)")
    resolve.add_argument("--long-standing-bug", action="store_true",
                         help="mark the fix as exposing a long-standing "
                              "bug rather than an environment change")
    resolve.set_defaults(handler=_cmd_interventions_resolve)

    serve = subparsers.add_parser(
        "serve",
        help="run the validation-as-a-service daemon: resume the "
             "persisted multi-tenant queue and drain it under fair-share "
             "scheduling",
    )
    serve.add_argument("--storage-dir", required=True,
                       help="the daemon's persistent storage directory: the "
                            "queue, tenant ledger, build cache and run "
                            "documents all live (and resume) here")
    serve.add_argument("--scale", type=float, default=0.15)
    serve.add_argument("--tenant", action="append", default=None,
                       metavar="NAME[:WEIGHT[:RATE[:BURST]]]",
                       help="register a tenant policy (repeatable): "
                            "fair-share WEIGHT (default 1), sustained "
                            "submission RATE per second (default 0 = "
                            "unlimited) and token-bucket BURST capacity "
                            "(default 1); unregistered tenants get "
                            "weight 1, unlimited")
    serve.add_argument("--max-submissions", type=_positive_int, default=None,
                       help="stop after this many dispatched campaigns "
                            "(default: drain the whole queue)")
    serve.add_argument("--heartbeat-every", type=_positive_int, default=1,
                       help="publish a heartbeat telemetry event every N "
                            "dispatched campaigns (default 1)")
    serve.set_defaults(handler=_cmd_serve)

    submit_async = subparsers.add_parser(
        "submit-async",
        help="enqueue a campaign submission into a daemon's persisted "
             "queue without executing it (a later 'serve' run dispatches "
             "it)",
    )
    submit_async.add_argument("--storage-dir", required=True,
                              help="the daemon's storage directory (created "
                                   "if missing)")
    submit_async.add_argument("--tenant", required=True,
                              help="the submitting tenant's name")
    submit_async.add_argument("--priority", default="normal",
                              choices=list(PRIORITY_LANES),
                              help="queue lane: 'high' jumps every queued "
                                   "'normal'/'low' submission (default "
                                   "normal)")
    submit_async.add_argument("--spec", default=None, metavar="FILE",
                              help="submit the CampaignSpec JSON document in "
                                   "FILE instead of building one from the "
                                   "flags below")
    submit_async.add_argument("--workers", type=_positive_int, default=1)
    submit_async.add_argument("--rounds", type=_positive_int, default=1)
    submit_async.add_argument("--backend", default="simulated",
                              choices=sorted(EXECUTION_BACKENDS))
    submit_async.set_defaults(handler=_cmd_submit_async)

    queue = subparsers.add_parser(
        "queue",
        help="inspect or cancel persisted service submissions without "
             "provisioning a system",
    )
    queue_sub = queue.add_subparsers(dest="queue_command", required=True)
    queue_status = queue_sub.add_parser(
        "status",
        help="list persisted submissions and the per-tenant usage ledger",
    )
    queue_status.add_argument("--storage-dir", required=True)
    queue_status.set_defaults(handler=_cmd_queue_status)
    queue_cancel = queue_sub.add_parser(
        "cancel", help="cancel a still-queued persisted submission"
    )
    queue_cancel.add_argument("--storage-dir", required=True)
    queue_cancel.add_argument("--submission", required=True,
                              metavar="SUBMISSION_ID")
    queue_cancel.set_defaults(handler=_cmd_queue_cancel)

    metrics = subparsers.add_parser(
        "metrics",
        help="run one instrumented campaign and print its metrics in "
             "Prometheus text exposition format",
    )
    metrics.add_argument("--scale", type=float, default=0.05)
    metrics.add_argument("--workers", type=_positive_int, default=2)
    metrics.add_argument("--rounds", type=_positive_int, default=1)
    metrics.add_argument("--backend", default="simulated",
                         choices=sorted(EXECUTION_BACKENDS))
    metrics.set_defaults(handler=_cmd_metrics)

    trace = subparsers.add_parser(
        "trace",
        help="run one instrumented campaign and export its span tree as "
             "Chrome trace_event JSON (load in chrome://tracing or Perfetto)",
    )
    trace.add_argument("--out", required=True, metavar="TRACE_JSON",
                       help="file the Chrome trace document is written to")
    trace.add_argument("--scale", type=float, default=0.05)
    trace.add_argument("--workers", type=_positive_int, default=2)
    trace.add_argument("--rounds", type=_positive_int, default=1)
    trace.add_argument("--backend", default="simulated",
                       choices=sorted(EXECUTION_BACKENDS))
    trace.add_argument("--output", default=None,
                       help="also persist the storage (including the "
                            "reports/telemetry.html timing page) below this "
                            "directory")
    trace.set_defaults(handler=_cmd_trace)

    bench_trends = subparsers.add_parser(
        "bench-trends",
        help="inspect or gate the recorded benchmark trend series",
    )
    bench_trends_sub = bench_trends.add_subparsers(
        dest="bench_trends_command", required=True
    )
    bench_trends_check = bench_trends_sub.add_parser(
        "check",
        help="compare the latest point of every trend series against the "
             "trailing median; exit 1 on any regression past the threshold",
    )
    bench_trends_check.add_argument(
        "--dir", default=None, metavar="TRENDS_DIR",
        help="trend series directory (default benchmarks/_results/trends)",
    )
    bench_trends_check.add_argument(
        "--threshold", type=_positive_float, default=None,
        help="relative regression threshold (default 0.25 = 25%%)",
    )
    bench_trends_check.add_argument(
        "--window", type=_positive_int, default=None,
        help="trailing points forming the median baseline (default 10)",
    )
    bench_trends_check.set_defaults(handler=_cmd_bench_trends_check)

    migrate = subparsers.add_parser("migrate-plan", help="plan a migration to a new platform")
    migrate.add_argument("--experiment", required=True, choices=sorted(_EXPERIMENT_BUILDERS))
    migrate.add_argument("--source", default="SL5_64bit_gcc4.4")
    migrate.add_argument("--target", default="SL7",
                         help="'SL7' for the SL7+ROOT6 challenge, or a configuration key")
    migrate.add_argument("--scale", type=float, default=0.3)
    migrate.set_defaults(handler=_cmd_migrate_plan)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


# -- command handlers -------------------------------------------------------------
def _cmd_levels(arguments: argparse.Namespace) -> int:
    rows = preservation_table()
    print(format_table(
        ["level", "preservation model", "use case"],
        [[row["level"], row["preservation_model"], row["use_case"]] for row in rows],
    ))
    return 0


def _provisioned_system(
    scale: float,
    experiments: Optional[List[str]] = None,
    storage: Optional[CommonStorage] = None,
    telemetry: Optional[Telemetry] = None,
) -> SPSystem:
    system = SPSystem(storage=storage, telemetry=telemetry)
    system.provision_standard_images()
    names = experiments if experiments is not None else list(_EXPERIMENT_BUILDERS)
    for name in names:
        system.register_experiment(_EXPERIMENT_BUILDERS[name](scale=scale))
    return system


def _cmd_describe(arguments: argparse.Namespace) -> int:
    system = _provisioned_system(arguments.scale)
    description = system.describe()
    print("Configurations:")
    for configuration in description["configurations"]:
        externals = ", ".join(
            f"{product} {version}"
            for product, version in sorted(configuration["externals"].items())
        )
        print(
            f"  {configuration['operating_system']}/{configuration['word_size']}bit "
            f"{configuration['compiler']}  [{externals}]"
        )
    print("\nExperiments:")
    for name, info in sorted(description["experiments"].items()):
        print(
            f"  {name}: DPHEP level {info['preservation_level']}, "
            f"{info['packages']} packages, {info['tests']} tests, phase {info['phase']}"
        )
    return 0


def _cmd_validate(arguments: argparse.Namespace) -> int:
    system = _provisioned_system(arguments.scale, [arguments.experiment])
    if arguments.reference_configuration:
        reference = system.validate(
            arguments.experiment, arguments.reference_configuration,
            description="reference run",
        )
        print(reference.summary())
    result = system.validate(arguments.experiment, arguments.configuration)
    print(result.summary())
    print(result.regression_report.summary())
    if result.diagnosis is not None:
        print("diagnosis by category:", result.diagnosis.by_category())
        for ticket in result.tickets:
            print(f"  {ticket.ticket_id} -> {ticket.party.value}: {ticket.description}")
    if arguments.output:
        StatusPageGenerator(system.storage, system.catalog).run_page(result.run)
        written = system.storage.persist(arguments.output)
        print(f"persisted {len(written)} documents below {arguments.output}")
    return 0 if result.successful else 1


def _load_spec_file(path: str) -> CampaignSpec:
    """Load a CampaignSpec from a JSON document on disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ReproError(f"cannot read spec file {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise ReproError(f"spec file {path!r} is not valid JSON: {error}") from error
    return CampaignSpec.from_dict(payload)


def _cmd_campaign(arguments: argparse.Namespace) -> int:
    telemetry = Telemetry.create() if arguments.telemetry else None
    system = _provisioned_system(arguments.scale, telemetry=telemetry)
    cache_dir = arguments.cache_dir or arguments.output
    if arguments.spec:
        spec = _load_spec_file(arguments.spec)
    else:
        spec = CampaignSpec(
            workers=arguments.workers,
            rounds=arguments.rounds,
            batch_size=arguments.batch_size,
            policy=arguments.policy,
            deadline_seconds=arguments.deadline_seconds,
            backend=arguments.backend,
        )
    if arguments.cache_budget_mb is not None and (
        arguments.no_cache or not spec.use_cache
    ):
        # Catches --no-cache and a --spec file with "use_cache": false alike:
        # without the cache layer the budget would be a silent no-op.
        raise ReproError(
            "--cache-budget-mb conflicts with --no-cache (or a spec file "
            "with \"use_cache\": false)"
        )
    if arguments.cache_budget_mb is not None:
        if not arguments.output:
            # The budget also caps the persisted journal; without --output
            # nothing is persisted, so honour the historical contract of
            # requiring one instead of silently applying half the flag.
            raise ReproError("--cache-budget-mb requires --output")
        # Fold the override into the spec (winning over a --spec file's own
        # budget) BEFORE submission: the persisted record must replay with
        # the cache budget that was actually applied.
        spec = CampaignSpec.from_dict(
            dict(
                spec.to_dict(),
                cache_budget_bytes=int(arguments.cache_budget_mb * 1024 * 1024),
            )
        )
    if arguments.no_cache:
        # Folded into the spec for the same replayability reason.
        spec = CampaignSpec.from_dict(dict(spec.to_dict(), use_cache=False))
    if arguments.shards is not None:
        # Folded into the spec (winning over a --spec file's own value); a
        # spec still on the default "simulated" backend switches to the
        # sharded backend, an explicit incompatible --backend is rejected by
        # the spec validation on submit.
        spec = CampaignSpec.from_dict(
            dict(spec.to_dict(), shards=arguments.shards)
        )
    if arguments.record_history:
        if not arguments.output:
            # Like --cache-budget-mb: the ledger exists for longitudinal
            # queries over the *persisted* storage; without --output the
            # recorded history would be silently discarded.
            raise ReproError("--record-history requires --output")
        # Folded into the spec (winning over a --spec file's own value), so
        # the persisted record replays with history recording on.
        spec = CampaignSpec.from_dict(dict(spec.to_dict(), record_history=True))
    if arguments.on_deadline is not None:
        # Folded into the spec (winning over a --spec file's own value), so
        # the persisted record replays the same deadline semantics.
        spec = CampaignSpec.from_dict(
            dict(spec.to_dict(), on_deadline=arguments.on_deadline)
        )
    if arguments.event_log is not None:
        spec = CampaignSpec.from_dict(
            dict(spec.to_dict(), event_log=arguments.event_log)
        )
    if arguments.plugin:
        spec = CampaignSpec.from_dict(
            dict(spec.to_dict(), plugins=list(arguments.plugin))
        )
    if arguments.cache_dir and not spec.use_cache:
        # An *explicit* --cache-dir (as opposed to the --output default)
        # would be a silent no-op without the cache layer; refuse it like
        # the budget flag.
        raise ReproError(
            "--cache-dir conflicts with --no-cache (or a spec file with "
            "\"use_cache\": false): there is no cache to warm-start"
        )
    if (
        spec.use_cache
        and spec.warm_start
        and cache_dir
        and os.path.isdir(cache_dir)
    ):
        # Warm-start (gated on the *effective* spec settings, so a --spec
        # file disabling the cache or the warm start skips it — the
        # persisted spec record must replay the same campaign): replay
        # only the build-cache journal of the previous campaign, not its
        # accumulated run documents and report pages.
        restored = system.restore_build_cache(
            CommonStorage.load(cache_dir, namespaces=[BuildCache.NAMESPACE]),
            missing_ok=True,
        )
        if restored is not None:
            print(f"warm-started build cache: {len(restored)} entries from {cache_dir}")
    if (
        spec.record_history is not False
        and cache_dir
        and os.path.isdir(cache_dir)
    ):
        # Mount a previously persisted history ledger before submitting, so
        # repeated campaigns against one --output accumulate one continuous
        # history (and the record_history=None auto mode keeps recording).
        mounted = system.restore_history(
            CommonStorage.load(
                cache_dir, namespaces=[ValidationHistoryLedger.NAMESPACE]
            ),
            missing_ok=True,
        )
        if mounted is not None:
            print(
                f"mounted validation history: {len(mounted)} event(s) "
                f"from {cache_dir}"
            )
    if cache_dir and os.path.isdir(cache_dir):
        # Mount previously persisted tickets, so the regression alerter
        # deduplicates against — instead of re-opening — the open tickets
        # of earlier campaigns, and the persisted output carries them all.
        mounted_store = system.restore_interventions(
            CommonStorage.load(
                cache_dir, namespaces=[InterventionStore.NAMESPACE]
            ),
            missing_ok=True,
        )
        if mounted_store is not None:
            print(
                f"mounted {len(mounted_store.tickets())} intervention "
                f"ticket(s) from {cache_dir}"
            )
    handle = system.submit(spec)
    campaign = handle.result()
    print(f"submitted {handle.campaign_id}: {handle.cells_completed}/"
          f"{handle.cells_total} cells on the {campaign.backend!r} backend")
    matrix = ValidationSummaryBuilder().from_campaign(campaign)
    print(matrix.render_text())
    print()
    print(campaign.render_text())
    print()
    print(rows_to_text(
        catalog_to_rows(system.catalog),
        columns=["run_id", "experiment", "configuration", "overall_status"],
    ))
    if telemetry is not None:
        print()
        print(_phase_table(telemetry))
    if spec.event_log:
        print(f"lifecycle event log appended to {spec.event_log}")
    open_tickets = (
        InterventionStore(system.storage).open_tickets()
        if InterventionStore.exists_in(system.storage)
        else None
    )
    if spec.plugins:
        print(
            f"{len(open_tickets or [])} open intervention ticket(s) after "
            "this campaign"
        )
    if arguments.output:
        appended_entries = 0
        if spec.use_cache:
            # Persist before the pages render, so the campaign page can
            # report the journal it will actually travel with.
            appended_entries = system.persist_build_cache(
                max_bytes=spec.cache_budget_bytes
            )
        pages = StatusPageGenerator(system.storage, system.catalog)
        history_on = system.history is not None
        pages.campaign_page(
            campaign,
            cache_journal=(
                BuildCache.journal_status(system.storage)
                if spec.use_cache
                else None
            ),
            history_link=history_on,
            tickets=(
                intervention_rows(open_tickets)
                if open_tickets is not None
                else None
            ),
            events=(
                lifecycle_event_rows(system.lifecycle.recent(limit=50))
                if system.lifecycle.events
                else None
            ),
        )
        pages.index_page()
        pages.summary_page(matrix.render_text())
        if telemetry is not None:
            pages.telemetry_page(
                telemetry.tracer.phase_rows(),
                metric_rows=telemetry.metrics.summary_rows(),
                span_count=len(telemetry.tracer.spans),
            )
        if history_on:
            ledger = system.history
            findings = RegressionDetector(ledger).findings()
            pages.trends_page(
                trend_rows(ledger),
                regression_rows(findings),
                history_status=ledger.status(),
                evolution_rows=[
                    record.to_dict() for record in ledger.evolution_records()
                ],
            )
            status = ledger.status()
            open_regressions = sum(
                1 for finding in findings if finding.is_regression
            )
            print(
                f"validation history: {status['events']} event(s) across "
                f"{status['campaigns']} campaign(s), "
                f"{open_regressions} open regression(s)"
            )
        written = system.storage.persist(arguments.output)
        print(f"\npersisted {len(written)} documents below {arguments.output} "
              f"({appended_entries} new build-cache journal records for the "
              f"next campaign)")
    return 0


def _cmd_cache_stats(arguments: argparse.Namespace) -> int:
    from repro.reporting.summary import build_cache_rows, cache_journal_rows
    from repro.storage.artifacts import ArtifactStore

    if not os.path.isdir(arguments.cache_dir):
        raise ReproError(f"no such storage directory: {arguments.cache_dir}")
    storage = CommonStorage.load(
        arguments.cache_dir, namespaces=[BuildCache.NAMESPACE]
    )
    if BuildCache.NAMESPACE not in storage.namespaces():
        raise ReproError(
            f"no persisted build cache below {arguments.cache_dir}: "
            f"the storage has no {BuildCache.NAMESPACE!r} namespace"
        )
    cache = BuildCache.restore_from(storage, ArtifactStore())
    if arguments.compact:
        written = cache.compact(storage)
        storage.persist(arguments.cache_dir)
        print(f"compacted the journal to {written} entry record(s)")
    rows = (
        [{"quantity": "live cache entries", "value": len(cache)},
         {"quantity": "live cache bytes", "value": cache.total_size_bytes()}]
        + build_cache_rows(cache.statistics)
        + cache_journal_rows(BuildCache.journal_status(storage))
    )
    print(f"build-cache journal below {arguments.cache_dir}")
    print(format_table(
        ["quantity", "value"], [[row["quantity"], row["value"]] for row in rows]
    ))
    return 0


def _load_history_ledger(storage_dir: str) -> ValidationHistoryLedger:
    """Mount the history ledger persisted below *storage_dir*.

    A missing directory or a storage without a ledger is a clean
    :class:`ReproError` (exit code 2), never a traceback — the consistent
    counterpart of how ``cache-stats`` treats a missing build cache.
    """
    from repro._common import StorageError

    if not os.path.isdir(storage_dir):
        raise ReproError(f"no such storage directory: {storage_dir}")
    storage = CommonStorage.load(
        storage_dir, namespaces=[ValidationHistoryLedger.NAMESPACE]
    )
    try:
        return ValidationHistoryLedger.open(storage)
    except StorageError:
        raise ReproError(
            f"no validation history ledger below {storage_dir}: run "
            "'campaign --record-history --output' first"
        ) from None


def _print_rows(rows: List[Dict[str, object]], columns: List[str]) -> None:
    print(format_table(
        columns, [[row.get(column, "") for column in columns] for row in rows]
    ))


def _cmd_history_trends(arguments: argparse.Namespace) -> int:
    ledger = _load_history_ledger(arguments.storage_dir)
    rows = trend_rows(ledger, experiment=arguments.experiment)
    status = ledger.status()
    print(
        f"validation history below {arguments.storage_dir}: "
        f"{status['events']} event(s), {status['campaigns']} campaign(s), "
        f"{status['cells']} cell(s), {status['evolutions']} evolution "
        "event(s)"
    )
    if not rows:
        print("no trend points recorded")
        return 0
    _print_rows(rows, ["experiment", "campaign", "cells", "validated",
                       "broken", "pass_fraction"])
    return 0


def _cmd_history_diff(arguments: argparse.Namespace) -> int:
    ledger = _load_history_ledger(arguments.storage_dir)
    diff = diff_campaigns(
        ledger, arguments.from_campaign, arguments.to_campaign
    )
    print(diff.summary())
    rows = diff_rows(diff)
    if rows:
        _print_rows(rows, ["experiment", "configuration", "change", "from", "to"])
    return 0


def _cmd_history_regressions(arguments: argparse.Namespace) -> int:
    from repro.history import CLASS_FLAKY, CLASS_NEVER_VALIDATED

    ledger = _load_history_ledger(arguments.storage_dir)
    findings = RegressionDetector(ledger).findings()
    regressions = [finding for finding in findings if finding.is_regression]
    flaky = sum(1 for f in findings if f.classification == CLASS_FLAKY)
    never = sum(
        1 for f in findings if f.classification == CLASS_NEVER_VALIDATED
    )
    print(
        f"{len(regressions)} regression(s), {flaky} flaky cell(s), "
        f"{never} never-validated cell(s) across {len(findings)} "
        "recorded cell(s)"
    )
    if not arguments.quiet:
        for finding in regressions:
            print(f"  {finding.summary()}")
        if findings:
            _print_rows(
                regression_rows(findings),
                ["experiment", "configuration", "classification", "events",
                 "flips", "first_bad", "suspected_change"],
            )
    # Nonzero on open regressions, so cron jobs can gate on the exit code
    # (`history regressions --quiet && ...`); storage errors stay exit 2.
    return 1 if regressions else 0


def _load_intervention_store(storage_dir: str) -> "tuple[CommonStorage, InterventionStore]":
    """Mount the intervention tickets persisted below *storage_dir*."""
    if not os.path.isdir(storage_dir):
        raise ReproError(f"no such storage directory: {storage_dir}")
    storage = CommonStorage.load(
        storage_dir, namespaces=[InterventionStore.NAMESPACE]
    )
    if not InterventionStore.exists_in(storage):
        raise ReproError(
            f"no intervention tickets below {storage_dir}: run a campaign "
            "with --plugin regression-alerts first"
        )
    return storage, InterventionStore(storage)


def _cmd_interventions_list(arguments: argparse.Namespace) -> int:
    _storage, store = _load_intervention_store(arguments.storage_dir)
    tickets = store.tickets() if arguments.show_all else store.open_tickets()
    print(
        f"{len(store.open_tickets())} open ticket(s) of "
        f"{len(store.tickets())} recorded below {arguments.storage_dir}"
    )
    if tickets:
        columns = ["ticket", "experiment", "configuration", "category",
                   "status", "suspected change", "description"]
        if arguments.show_all:
            # The full listing shows how often each resolved ticket
            # re-opened on recurrence (the alert dedupe/re-open window).
            columns.insert(5, "reopened")
        _print_rows(intervention_rows(tickets), columns)
    return 0


def _cmd_interventions_resolve(arguments: argparse.Namespace) -> int:
    storage, store = _load_intervention_store(arguments.storage_dir)
    ticket = store.resolve(
        arguments.ticket,
        arguments.resolution,
        timestamp=arguments.timestamp,
        long_standing_bug=arguments.long_standing_bug,
    )
    storage.persist(arguments.storage_dir)
    print(
        f"resolved {ticket.ticket_id} at t={ticket.resolved_at}: "
        f"{arguments.resolution}"
    )
    return 0


def _parse_tenant_flag(text: str) -> TenantPolicy:
    """Parse a ``NAME[:WEIGHT[:RATE[:BURST]]]`` tenant flag."""
    parts = text.split(":")
    try:
        return TenantPolicy(
            name=parts[0],
            weight=int(parts[1]) if len(parts) > 1 and parts[1] else 1,
            rate_per_second=(
                float(parts[2]) if len(parts) > 2 and parts[2] else 0.0
            ),
            burst=int(parts[3]) if len(parts) > 3 and parts[3] else 1,
        )
    except ValueError as error:
        raise ReproError(f"invalid --tenant flag {text!r}: {error}") from error


def _load_service_storage(storage_dir: str, create: bool = False) -> CommonStorage:
    """Load a daemon's persisted storage (optionally starting fresh)."""
    if os.path.isdir(storage_dir):
        return CommonStorage.load(storage_dir)
    if not create:
        raise ReproError(f"no such storage directory: {storage_dir}")
    return CommonStorage()


def _print_service_tables(
    service: ValidationService, submissions: Optional[List] = None
) -> None:
    rows = submissions if submissions is not None else service.submissions()
    if rows:
        _print_rows(
            submission_rows(rows),
            ["submission", "tenant", "priority", "status", "campaign",
             "cells", "error"],
        )
    _print_rows(
        tenant_rows(service.ledger, backlog=service.queue.backlog()),
        ["tenant", "weight", "rate/s", "queued", "submitted", "completed",
         "failed", "cancelled", "rejected", "cells", "build s",
         "cache hits", "shared hits", "donated", "cache bytes"],
    )


def _cmd_serve(arguments: argparse.Namespace) -> int:
    storage = _load_service_storage(arguments.storage_dir, create=True)
    system = _provisioned_system(arguments.scale, storage=storage)
    service = ValidationService(
        system,
        tenants=[_parse_tenant_flag(text) for text in arguments.tenant or []],
        heartbeat_every=arguments.heartbeat_every,
    )
    resumed = service.queue.depth()
    print(
        f"serving below {arguments.storage_dir}: {resumed} queued "
        f"submission(s) resumed, {len(service.ledger.tenants())} tenant(s)"
    )
    processed = service.run_pending(max_submissions=arguments.max_submissions)
    for submission in processed:
        outcome = submission.campaign_id or submission.error or ""
        print(
            f"  {submission.submission_id} [{submission.tenant}] "
            f"{submission.status}: {outcome}"
        )
    service.beat(source="serve")
    appended = system.persist_build_cache()
    written = storage.persist(arguments.storage_dir)
    print(
        f"dispatched {len(processed)} campaign(s); queue depth now "
        f"{service.queue.depth()}"
    )
    _print_service_tables(service)
    _print_rows(snapshot_rows(service.snapshot()), ["metric", "value"])
    print(
        f"persisted {len(written)} documents below {arguments.storage_dir} "
        f"({appended} new build-cache journal records); live dashboard: "
        f"{os.path.join(arguments.storage_dir, 'reports', 'service.html')}"
    )
    return 0


def _cmd_submit_async(arguments: argparse.Namespace) -> int:
    storage = _load_service_storage(arguments.storage_dir, create=True)
    # No provisioning and no warm start: this command only enqueues — the
    # next `serve` run provisions a system and executes.
    system = SPSystem(storage=storage)
    service = ValidationService(system, warm_start=False, dashboard=False)
    if arguments.spec:
        spec = _load_spec_file(arguments.spec)
    else:
        spec = CampaignSpec(
            workers=arguments.workers,
            rounds=arguments.rounds,
            backend=arguments.backend,
        )
    submission = service.submit(arguments.tenant, spec, arguments.priority)
    written = storage.persist(arguments.storage_dir)
    print(
        f"queued {submission.submission_id} for tenant "
        f"{submission.tenant!r} ({submission.priority} lane); queue depth "
        f"{service.queue.depth()}, {len(written)} documents persisted "
        f"below {arguments.storage_dir}"
    )
    return 0


def _cmd_queue_status(arguments: argparse.Namespace) -> int:
    if not os.path.isdir(arguments.storage_dir):
        raise ReproError(f"no such storage directory: {arguments.storage_dir}")
    storage = CommonStorage.load(
        arguments.storage_dir, namespaces=[SERVICE_NAMESPACE]
    )
    submissions = load_submissions(storage)
    ledger = TenantLedger(storage)
    if not submissions and not ledger.tenants():
        raise ReproError(
            f"no service state below {arguments.storage_dir}: run "
            "'submit-async' or 'serve' first"
        )
    queued = [item for item in submissions if item.status == "queued"]
    backlog: Dict[str, int] = {}
    for item in queued:
        backlog[item.tenant] = backlog.get(item.tenant, 0) + 1
    print(
        f"{len(queued)} queued of {len(submissions)} recorded "
        f"submission(s) below {arguments.storage_dir}"
    )
    if storage.exists(SERVICE_NAMESPACE, ValidationService.WORKER_STATUS_KEY):
        worker = storage.get(
            SERVICE_NAMESPACE, ValidationService.WORKER_STATUS_KEY
        )
        line = (
            f"heartbeat worker (last persisted): {worker.get('beats', 0)} "
            f"beat(s), {worker.get('failures', 0)} failure(s), "
            f"{worker.get('restarts', 0)} restart(s)"
        )
        if worker.get("last_error"):
            line += f"; last error: {worker['last_error']}"
        print(line)
    if submissions:
        _print_rows(
            submission_rows(submissions),
            ["submission", "tenant", "priority", "status", "campaign",
             "cells", "error"],
        )
    _print_rows(
        tenant_rows(ledger, backlog=backlog),
        ["tenant", "weight", "rate/s", "queued", "submitted", "completed",
         "failed", "cancelled", "rejected", "cells", "build s",
         "cache hits", "shared hits", "donated", "cache bytes"],
    )
    return 0


def _cmd_queue_cancel(arguments: argparse.Namespace) -> int:
    if not os.path.isdir(arguments.storage_dir):
        raise ReproError(f"no such storage directory: {arguments.storage_dir}")
    storage = CommonStorage.load(
        arguments.storage_dir, namespaces=[SERVICE_NAMESPACE]
    )
    submission = cancel_persisted(storage, arguments.submission)
    storage.persist(arguments.storage_dir)
    print(
        f"cancelled {submission.submission_id} (tenant "
        f"{submission.tenant!r}); the next serve run will not dispatch it"
    )
    return 0


def _phase_table(telemetry: Telemetry) -> str:
    """Render the tracer's per-phase timing rows as a text table."""
    return format_table(
        ["category", "span", "calls", "cumulative s", "self s"],
        [
            [category, name, calls, f"{cumulative:.6f}", f"{self_seconds:.6f}"]
            for category, name, calls, cumulative, self_seconds
            in telemetry.tracer.phase_rows()
        ],
    )


def _instrumented_campaign(
    arguments: argparse.Namespace,
) -> "tuple[SPSystem, Telemetry]":
    """Run one campaign with a live telemetry bundle attached."""
    from repro.telemetry import MetricsObserver

    telemetry = Telemetry.create()
    system = _provisioned_system(arguments.scale, telemetry=telemetry)
    system.lifecycle.add_observer(MetricsObserver(telemetry.metrics))
    spec = CampaignSpec(
        workers=arguments.workers,
        rounds=arguments.rounds,
        backend=arguments.backend,
    )
    handle = system.submit(spec)
    handle.result()
    return system, telemetry


def _cmd_metrics(arguments: argparse.Namespace) -> int:
    system, telemetry = _instrumented_campaign(arguments)
    print(prometheus_text(telemetry.metrics), end="")
    return 0


def _cmd_trace(arguments: argparse.Namespace) -> int:
    system, telemetry = _instrumented_campaign(arguments)
    document = telemetry.tracer.chrome_trace()
    try:
        with open(arguments.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
    except OSError as error:
        raise ReproError(
            f"cannot write trace file {arguments.out!r}: {error}"
        ) from error
    print(
        f"wrote {len(document['traceEvents'])} trace event(s) to "
        f"{arguments.out} (load in chrome://tracing or ui.perfetto.dev)"
    )
    print()
    print(_phase_table(telemetry))
    if arguments.output:
        StatusPageGenerator(system.storage, system.catalog).telemetry_page(
            telemetry.tracer.phase_rows(),
            metric_rows=telemetry.metrics.summary_rows(),
            span_count=len(telemetry.tracer.spans),
        )
        written = system.storage.persist(arguments.output)
        print(
            f"persisted {len(written)} documents below {arguments.output} "
            "(timing page: reports/telemetry.html)"
        )
    return 0


def _cmd_bench_trends_check(arguments: argparse.Namespace) -> int:
    directory = arguments.dir or DEFAULT_TRENDS_DIR
    threshold = (
        arguments.threshold if arguments.threshold is not None
        else DEFAULT_THRESHOLD
    )
    window = arguments.window if arguments.window is not None else DEFAULT_WINDOW
    verdicts = check_trends(directory, threshold=threshold, window=window)
    if not verdicts:
        print(
            f"no trend series below {directory}: nothing to gate "
            "(run the benchmarks to seed them)"
        )
        return 0
    print(
        f"{len(verdicts)} trend series below {directory} "
        f"(threshold {threshold:.0%}, window {window})"
    )
    print(format_table(
        ["metric", "points", "latest", "baseline", "change", "verdict"],
        [verdict.to_row() for verdict in sorted(verdicts.values(),
                                                key=lambda item: item.metric)],
    ))
    regressed = [v for v in verdicts.values() if v.regressed]
    if regressed:
        print(
            f"{len(regressed)} metric(s) regressed past the "
            f"{threshold:.0%} threshold"
        )
        return 1
    return 0


def _cmd_migrate_plan(arguments: argparse.Namespace) -> int:
    system = _provisioned_system(arguments.scale, [arguments.experiment])
    if arguments.target.upper() == "SL7":
        target = next_generation_configuration()
        system.add_configuration(target)
    else:
        target = system.configuration(arguments.target)
    source = system.configuration(arguments.source)
    plan = MigrationPlanner().plan(system.experiment(arguments.experiment), source, target)
    print(
        f"Migration of {arguments.experiment} from {source.key} to {target.key}: "
        f"predicted pass fraction {plan.predicted_pass_fraction:.0%}, "
        f"{plan.total_effort_person_weeks:.1f} person-weeks of porting"
    )
    if plan.is_trivial:
        print("nothing to do — the software already builds and runs on the target")
        return 0
    print(rows_to_text(plan.rows()))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
