"""Dependency graph and build ordering for experiment packages.

The automated build step of the sp-system compiles on the order of a hundred
packages per experiment.  Packages depend on each other (reconstruction needs
the core event model, analysis needs reconstruction), so the builder needs a
topological order and needs to know which downstream packages become
unbuildable when one package fails.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro._common import BuildError
from repro.buildsys.package import PackageInventory, SoftwarePackage


class DependencyCycleError(BuildError):
    """Raised when the package dependency graph contains a cycle."""

    def __init__(self, cycle: Sequence[str]):
        self.cycle = list(cycle)
        super().__init__("dependency cycle: " + " -> ".join(self.cycle))


class DependencyGraph:
    """Directed dependency graph over the packages of one experiment."""

    def __init__(self, inventory: PackageInventory) -> None:
        problems = inventory.validate_dependencies()
        if problems:
            raise BuildError("; ".join(problems))
        self.inventory = inventory
        self._edges: Dict[str, Tuple[str, ...]] = {
            package.name: package.dependencies for package in inventory.all()
        }
        self._reverse: Dict[str, Set[str]] = {name: set() for name in self._edges}
        for name, dependencies in self._edges.items():
            for dependency in dependencies:
                self._reverse[dependency].add(name)
        # Fail fast on cycles so every other method can assume a DAG.
        self._order = self._topological_order()

    def dependencies_of(self, name: str) -> List[str]:
        """Direct dependencies of *name*."""
        if name not in self._edges:
            raise BuildError(f"unknown package {name!r}")
        return list(self._edges[name])

    def dependents_of(self, name: str) -> List[str]:
        """Packages that directly depend on *name*."""
        if name not in self._reverse:
            raise BuildError(f"unknown package {name!r}")
        return sorted(self._reverse[name])

    def build_order(self) -> List[str]:
        """Topological build order (dependencies before dependents)."""
        return list(self._order)

    def transitive_dependencies(self, name: str) -> Set[str]:
        """All packages that must be built before *name*."""
        if name not in self._edges:
            raise BuildError(f"unknown package {name!r}")
        visited: Set[str] = set()
        stack = list(self._edges[name])
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            stack.extend(self._edges[current])
        return visited

    def transitive_dependents(self, name: str) -> Set[str]:
        """All packages that become unbuildable when *name* fails."""
        if name not in self._reverse:
            raise BuildError(f"unknown package {name!r}")
        visited: Set[str] = set()
        stack = list(self._reverse[name])
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            stack.extend(self._reverse[current])
        return visited

    def build_levels(self) -> List[List[str]]:
        """Group packages into levels that can be built in parallel.

        Level 0 contains packages without dependencies; level N contains
        packages whose dependencies all live in levels < N.  The runner uses
        this to model the "some tests run in parallel" behaviour.
        """
        level_of: Dict[str, int] = {}
        for name in self._order:
            dependencies = self._edges[name]
            if not dependencies:
                level_of[name] = 0
            else:
                level_of[name] = 1 + max(level_of[dependency] for dependency in dependencies)
        n_levels = max(level_of.values(), default=-1) + 1
        levels: List[List[str]] = [[] for _ in range(n_levels)]
        for name, level in level_of.items():
            levels[level].append(name)
        for level in levels:
            level.sort()
        return levels

    def critical_path(self) -> List[str]:
        """Longest dependency chain, weighted by estimated build time."""
        best_cost: Dict[str, float] = {}
        best_prev: Dict[str, Optional[str]] = {}
        for name in self._order:
            package = self.inventory.get(name)
            own_cost = package.estimated_build_seconds()
            dependencies = self._edges[name]
            if dependencies:
                predecessor = max(dependencies, key=lambda dep: best_cost[dep])
                best_cost[name] = best_cost[predecessor] + own_cost
                best_prev[name] = predecessor
            else:
                best_cost[name] = own_cost
                best_prev[name] = None
        if not best_cost:
            return []
        end = max(best_cost, key=lambda name: best_cost[name])
        path = [end]
        while best_prev[path[-1]] is not None:
            path.append(best_prev[path[-1]])
        return list(reversed(path))

    def _topological_order(self) -> List[str]:
        """Kahn's algorithm; deterministic by sorting ready nodes."""
        in_degree: Dict[str, int] = {
            name: len(dependencies) for name, dependencies in self._edges.items()
        }
        ready = sorted(name for name, degree in in_degree.items() if degree == 0)
        queue = deque(ready)
        order: List[str] = []
        while queue:
            current = queue.popleft()
            order.append(current)
            for dependent in sorted(self._reverse[current]):
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    queue.append(dependent)
        if len(order) != len(self._edges):
            remaining = [name for name in self._edges if name not in set(order)]
            cycle = self._find_cycle(remaining)
            raise DependencyCycleError(cycle)
        return order

    def _find_cycle(self, candidates: Sequence[str]) -> List[str]:
        """Find one concrete cycle among *candidates* for the error message."""
        candidate_set = set(candidates)
        for start in candidates:
            path: List[str] = []
            visited: Set[str] = set()

            def visit(node: str) -> Optional[List[str]]:
                if node in path:
                    return path[path.index(node):] + [node]
                if node in visited:
                    return None
                visited.add(node)
                path.append(node)
                for dependency in self._edges[node]:
                    if dependency in candidate_set:
                        found = visit(dependency)
                        if found:
                            return found
                path.pop()
                return None

            cycle = visit(start)
            if cycle:
                return cycle
        return list(candidates)


__all__ = ["DependencyGraph", "DependencyCycleError"]
