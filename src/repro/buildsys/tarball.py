"""Build artifacts: the tar-balls stored on the common sp-system storage.

"...the resulting binaries are stored as tar-balls on the common storage
within the sp-system."  A :class:`Tarball` is the simulated equivalent: it
records which package was built, for which environment, and carries a
deterministic content digest so that two builds of the same package on the
same environment produce identical artifacts (and different environments
produce different ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro._common import stable_digest
from repro.environment.configuration import EnvironmentConfiguration


@dataclass(frozen=True)
class Tarball:
    """A built, packaged binary artifact."""

    package_name: str
    package_version: str
    configuration_key: str
    digest: str
    size_bytes: int

    @property
    def filename(self) -> str:
        """Conventional artifact file name."""
        return (
            f"{self.package_name}-{self.package_version}"
            f"_{self.configuration_key}.tar.gz"
        )

    @classmethod
    def for_build(
        cls, package: "SoftwarePackage", configuration: EnvironmentConfiguration
    ) -> "Tarball":
        """Create the artifact produced by building *package* on *configuration*."""
        digest = stable_digest(
            package.name,
            package.version,
            configuration.key,
            sorted(configuration.external_map().items()),
        )
        # Binary size scales with code size; 64-bit binaries are a bit larger.
        size = int(package.lines_of_code * 42 * (1.15 if configuration.word_size == 64 else 1.0))
        return cls(
            package_name=package.name,
            package_version=package.version,
            configuration_key=configuration.key,
            digest=digest,
            size_bytes=size,
        )

    def to_dict(self) -> Dict[str, object]:
        """Serialise for storage in the run catalogue."""
        return {
            "package_name": self.package_name,
            "package_version": self.package_version,
            "configuration_key": self.configuration_key,
            "digest": self.digest,
            "size_bytes": self.size_bytes,
            "filename": self.filename,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Tarball":
        """Reconstruct from :meth:`to_dict` output."""
        return cls(
            package_name=str(payload["package_name"]),
            package_version=str(payload["package_version"]),
            configuration_key=str(payload["configuration_key"]),
            digest=str(payload["digest"]),
            size_bytes=int(payload["size_bytes"]),
        )


__all__ = ["Tarball"]
