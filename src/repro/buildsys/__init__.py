"""Build system substrate: packages, dependency graphs and simulated builds."""

from repro.buildsys.builder import (
    BuildCampaign,
    BuildResult,
    BuildStatus,
    Diagnostic,
    PackageBuilder,
)
from repro.buildsys.graph import DependencyCycleError, DependencyGraph
from repro.buildsys.package import (
    Language,
    PackageCategory,
    PackageInventory,
    SoftwarePackage,
)
from repro.buildsys.tarball import Tarball

__all__ = [
    "BuildCampaign",
    "BuildResult",
    "BuildStatus",
    "Diagnostic",
    "PackageBuilder",
    "DependencyCycleError",
    "DependencyGraph",
    "Language",
    "PackageCategory",
    "PackageInventory",
    "SoftwarePackage",
    "Tarball",
]
