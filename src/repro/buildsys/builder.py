"""Simulated compilation of experiment packages on an environment.

The sp-system performs "a regular build of the experimental software ...
according to the current prescription of the working environment".  The
:class:`PackageBuilder` reproduces that step: it checks each package's
requirements against the target environment, produces a
:class:`BuildResult` with compiler-style diagnostics, and stores the
resulting "binaries ... as tar-balls on the common storage".  Packages whose
dependencies failed are marked as skipped, exactly as a real recursive make
would leave them unbuilt.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro._common import BuildError, stable_digest, stable_fraction, stable_hash
from repro.buildsys.graph import DependencyGraph
from repro.buildsys.package import PackageInventory, SoftwarePackage
from repro.buildsys.tarball import Tarball
from repro.environment.compatibility import (
    CompatibilityChecker,
    CompatibilityIssue,
    IssueCategory,
    IssueSeverity,
)
from repro.environment.configuration import EnvironmentConfiguration


class BuildStatus(enum.Enum):
    """Outcome of building one package."""

    SUCCESS = "success"
    WARNINGS = "warnings"
    FAILED = "failed"
    SKIPPED = "skipped"

    def is_usable(self) -> bool:
        """A usable build produced an artifact (success or just warnings)."""
        return self in (BuildStatus.SUCCESS, BuildStatus.WARNINGS)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One compiler-style diagnostic message."""

    severity: str
    source: str
    message: str

    def __str__(self) -> str:
        return f"{self.source}: {self.severity}: {self.message}"

    def to_dict(self) -> Dict[str, str]:
        """Serialise for the common storage."""
        return {
            "severity": self.severity,
            "source": self.source,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "Diagnostic":
        """Reconstruct a diagnostic serialised by :meth:`to_dict`."""
        return cls(
            severity=str(payload["severity"]),
            source=str(payload["source"]),
            message=str(payload["message"]),
        )


@dataclass
class BuildResult:
    """Result of building one package on one environment configuration."""

    package: SoftwarePackage
    configuration_key: str
    status: BuildStatus
    diagnostics: List[Diagnostic] = field(default_factory=list)
    issues: List[CompatibilityIssue] = field(default_factory=list)
    tarball: Optional[Tarball] = None
    build_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        """True when the build produced a usable artifact."""
        return self.status.is_usable()

    @property
    def n_warnings(self) -> int:
        """Number of warning diagnostics."""
        return sum(1 for diagnostic in self.diagnostics if diagnostic.severity == "warning")

    @property
    def n_errors(self) -> int:
        """Number of error diagnostics."""
        return sum(1 for diagnostic in self.diagnostics if diagnostic.severity == "error")

    def failure_categories(self) -> List[IssueCategory]:
        """Categories of the error issues (used by the diagnosis engine)."""
        return [issue.category for issue in self.issues if issue.is_error()]

    def summary_line(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.package.name} [{self.configuration_key}] -> {self.status.value} "
            f"({self.n_errors} errors, {self.n_warnings} warnings)"
        )

    def to_dict(self) -> Dict[str, object]:
        """Serialise the complete result for the common storage.

        Unlike the run documents (which keep only summary lines), this is a
        full round-trip: the persisted build cache replays restored results
        and those replays must stay bit-identical to fresh builds.
        """
        return {
            "package": self.package.to_dict(),
            "configuration_key": self.configuration_key,
            "status": self.status.value,
            "diagnostics": [diagnostic.to_dict() for diagnostic in self.diagnostics],
            "issues": [issue.to_dict() for issue in self.issues],
            "tarball": self.tarball.to_dict() if self.tarball is not None else None,
            "build_seconds": self.build_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BuildResult":
        """Reconstruct a result serialised by :meth:`to_dict`."""
        tarball_payload = payload.get("tarball")
        return cls(
            package=SoftwarePackage.from_dict(payload["package"]),  # type: ignore[arg-type]
            configuration_key=str(payload["configuration_key"]),
            status=BuildStatus(str(payload["status"])),
            diagnostics=[
                Diagnostic.from_dict(diagnostic)
                for diagnostic in payload.get("diagnostics", [])  # type: ignore[union-attr]
            ],
            issues=[
                CompatibilityIssue.from_dict(issue)
                for issue in payload.get("issues", [])  # type: ignore[union-attr]
            ],
            tarball=(
                Tarball.from_dict(tarball_payload)  # type: ignore[arg-type]
                if tarball_payload is not None
                else None
            ),
            build_seconds=float(payload.get("build_seconds", 0.0)),  # type: ignore[arg-type]
        )


@dataclass
class BuildCampaign:
    """The result of building a whole inventory on one configuration."""

    experiment: str
    configuration_key: str
    results: Dict[str, BuildResult] = field(default_factory=dict)

    def add(self, result: BuildResult) -> None:
        """Record a package build result."""
        self.results[result.package.name] = result

    def result_for(self, package_name: str) -> BuildResult:
        """Return the result for *package_name*."""
        try:
            return self.results[package_name]
        except KeyError:
            raise BuildError(f"no build result for package {package_name!r}") from None

    def __len__(self) -> int:
        return len(self.results)

    @property
    def n_success(self) -> int:
        return sum(1 for result in self.results.values() if result.status is BuildStatus.SUCCESS)

    @property
    def n_warnings(self) -> int:
        return sum(1 for result in self.results.values() if result.status is BuildStatus.WARNINGS)

    @property
    def n_failed(self) -> int:
        return sum(1 for result in self.results.values() if result.status is BuildStatus.FAILED)

    @property
    def n_skipped(self) -> int:
        return sum(1 for result in self.results.values() if result.status is BuildStatus.SKIPPED)

    @property
    def all_usable(self) -> bool:
        """True when every package produced a usable artifact."""
        return all(result.succeeded for result in self.results.values())

    def failed_packages(self) -> List[str]:
        """Names of packages that failed to build (not merely skipped)."""
        return sorted(
            name for name, result in self.results.items()
            if result.status is BuildStatus.FAILED
        )

    def skipped_packages(self) -> List[str]:
        """Names of packages skipped because a dependency failed."""
        return sorted(
            name for name, result in self.results.items()
            if result.status is BuildStatus.SKIPPED
        )

    def usable_fraction(self) -> float:
        """Fraction of packages with a usable artifact."""
        if not self.results:
            return 0.0
        usable = sum(1 for result in self.results.values() if result.succeeded)
        return usable / len(self.results)

    def total_build_seconds(self) -> float:
        """Accumulated simulated build time."""
        return sum(result.build_seconds for result in self.results.values())


class PackageBuilder:
    """Builds package inventories against environment configurations."""

    def __init__(self, checker: Optional[CompatibilityChecker] = None) -> None:
        self.checker = checker or CompatibilityChecker()

    def build_package(
        self,
        package: SoftwarePackage,
        configuration: EnvironmentConfiguration,
    ) -> BuildResult:
        """Build a single package, ignoring dependency state."""
        issues = self.checker.check(package.requirements, configuration)
        errors = [issue for issue in issues if issue.is_error()]
        diagnostics = [
            Diagnostic(
                severity="error" if issue.is_error() else "warning",
                source=f"{package.name}/{issue.component}",
                message=issue.message,
            )
            for issue in issues
        ]
        diagnostics.extend(self._fragility_warnings(package, configuration))
        build_seconds = package.estimated_build_seconds()
        if errors:
            return BuildResult(
                package=package,
                configuration_key=configuration.key,
                status=BuildStatus.FAILED,
                diagnostics=diagnostics,
                issues=issues,
                tarball=None,
                build_seconds=build_seconds * 0.3,
            )
        status = BuildStatus.WARNINGS if any(
            diagnostic.severity == "warning" for diagnostic in diagnostics
        ) else BuildStatus.SUCCESS
        tarball = Tarball.for_build(package, configuration)
        return BuildResult(
            package=package,
            configuration_key=configuration.key,
            status=status,
            diagnostics=diagnostics,
            issues=issues,
            tarball=tarball,
            build_seconds=build_seconds,
        )

    def build_inventory(
        self,
        inventory: PackageInventory,
        configuration: EnvironmentConfiguration,
        stop_on_failure: bool = False,
    ) -> BuildCampaign:
        """Build every package of *inventory* in dependency order.

        Packages whose (transitive) dependencies failed are marked
        ``SKIPPED``.  With *stop_on_failure* the campaign stops at the first
        failed package, which is how a nightly build would behave with
        ``make -k`` disabled.
        """
        graph = DependencyGraph(inventory)
        campaign = BuildCampaign(
            experiment=inventory.experiment, configuration_key=configuration.key
        )
        unusable: set = set()
        stopped = False
        for name in graph.build_order():
            package = inventory.get(name)
            if stopped:
                campaign.add(self._skipped_result(package, configuration, "campaign stopped"))
                continue
            failed_dependencies = [
                dependency for dependency in package.dependencies if dependency in unusable
            ]
            if failed_dependencies:
                campaign.add(
                    self._skipped_result(
                        package,
                        configuration,
                        "dependency failed: " + ", ".join(sorted(failed_dependencies)),
                    )
                )
                unusable.add(name)
                continue
            result = self.build_package(package, configuration)
            campaign.add(result)
            if not result.succeeded:
                unusable.add(name)
                if stop_on_failure:
                    stopped = True
        return campaign

    def _skipped_result(
        self,
        package: SoftwarePackage,
        configuration: EnvironmentConfiguration,
        reason: str,
    ) -> BuildResult:
        return BuildResult(
            package=package,
            configuration_key=configuration.key,
            status=BuildStatus.SKIPPED,
            diagnostics=[Diagnostic("note", package.name, f"skipped: {reason}")],
            issues=[],
            tarball=None,
            build_seconds=0.0,
        )

    def _fragility_warnings(
        self,
        package: SoftwarePackage,
        configuration: EnvironmentConfiguration,
    ) -> List[Diagnostic]:
        """Deterministic warning noise from fragile legacy code.

        The number of warnings grows with compiler strictness and package
        fragility; it is derived from a stable hash so that the same package
        on the same environment always produces the same diagnostics, which
        lets run-to-run comparisons stay meaningful.
        """
        strictness = configuration.compiler.strictness
        expected = package.fragility * strictness * 3.0
        count = int(expected) + (
            1 if stable_fraction(package.key, configuration.key, "warnings")
            < (expected - int(expected)) else 0
        )
        warnings = []
        for index in range(count):
            kind = _WARNING_KINDS[
                stable_hash(package.key, configuration.key, index) % len(_WARNING_KINDS)
            ]
            warnings.append(
                Diagnostic(
                    severity="warning",
                    source=f"{package.name}/src_{index:02d}.{_suffix(package)}",
                    message=kind,
                )
            )
        return warnings


def build_result_digest(result: BuildResult) -> str:
    """Canonical content hash of one build result's full document.

    Builds are pure functions of the package's content identity and the
    target configuration, so re-executing a build must reproduce this digest
    exactly; :class:`BuildTask` uses it to pin that determinism contract.
    """
    return stable_digest(json.dumps(result.to_dict(), sort_keys=True))


@dataclass
class BuildTask:
    """One re-executable package build — the unit of real backend work.

    Extracted from the builder/cache pair so an execution backend that runs
    on real OS threads can perform genuine compilations instead of replaying
    recorded documents: a task carries everything
    :meth:`PackageBuilder.build_package` needs, and because that method is a
    pure function of (package content, configuration), concurrent execution
    cannot change the campaign's scientific output.

    With *expected_digest* set (normally the digest of the build result the
    validation pass recorded), :meth:`run` verifies the re-executed build
    reproduced it bit-identically and raises
    :class:`~repro._common.BuildError` otherwise.  ``runs`` counts how often
    the task was really executed — backends that only simulate time leave it
    at zero.
    """

    package: SoftwarePackage
    configuration: EnvironmentConfiguration
    builder: PackageBuilder
    expected_digest: Optional[str] = None
    runs: int = 0

    def run(self) -> BuildResult:
        """Execute the build (for real) and return its result."""
        result = self.builder.build_package(self.package, self.configuration)
        self.runs += 1
        if self.expected_digest is not None:
            digest = build_result_digest(result)
            if digest != self.expected_digest:
                raise BuildError(
                    f"re-executed build of {self.package.key} on "
                    f"{self.configuration.key} diverged from the recorded "
                    f"result ({digest} != {self.expected_digest})"
                )
        return result

    def __call__(self) -> BuildResult:
        return self.run()


_WARNING_KINDS = (
    "implicit conversion loses integer precision",
    "variable may be used uninitialised",
    "obsolescent feature: computed GO TO",
    "deprecated conversion from string constant to 'char*'",
    "comparison between signed and unsigned integer expressions",
    "type punning breaks strict aliasing rules",
)


def _suffix(package: SoftwarePackage) -> str:
    from repro.buildsys.package import Language

    return {
        Language.FORTRAN: "F",
        Language.CPP: "cc",
        Language.C: "c",
        Language.PYTHON: "py",
    }[package.language]


__all__ = [
    "BuildStatus",
    "Diagnostic",
    "BuildResult",
    "BuildCampaign",
    "PackageBuilder",
    "BuildTask",
    "build_result_digest",
]
