"""Software package model for the simulated experiment code bases.

The H1 level-4 preservation programme compiles "approximately 100 individual
H1 software packages and the identified external dependencies" on every
validation run.  A :class:`SoftwarePackage` describes one such package: its
language, size, internal dependencies and its
:class:`~repro.environment.compatibility.SoftwareRequirements`, which
determine on which environment configurations it builds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro._common import ConfigurationError, ensure_identifier, stable_digest
from repro.environment.compatibility import SoftwareRequirements


class PackageCategory(enum.Enum):
    """Functional category of an experiment software package.

    The categories mirror the structure of a level-4 preservation programme:
    everything from event simulation down to analysis utilities has to keep
    building for the full potential of the data to be retained.
    """

    CORE = "core"
    DATABASE = "database"
    SIMULATION = "simulation"
    RECONSTRUCTION = "reconstruction"
    CALIBRATION = "calibration"
    ANALYSIS = "analysis"
    UTILITIES = "utilities"
    MONITORING = "monitoring"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Language(enum.Enum):
    """Implementation language of a package (HERA software is mostly Fortran)."""

    FORTRAN = "fortran"
    CPP = "c++"
    C = "c"
    PYTHON = "python"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class SoftwarePackage:
    """One experiment software package.

    Attributes
    ----------
    name:
        Package name, unique within an experiment (e.g. ``"h1-h1rec"``).
    version:
        Package version string.
    experiment:
        Owning experiment name.
    category:
        Functional category; reporting groups per-package results by it.
    language:
        Main implementation language.
    lines_of_code:
        Approximate size; build durations scale with it.
    dependencies:
        Names of other packages of the same experiment that must be built
        first (the build system orders builds topologically).
    requirements:
        Environment requirements checked before the simulated compilation.
    fragility:
        A 0–1 number describing how likely the package is to develop problems
        under environment changes that are not captured by hard requirements
        (legacy code with undefined behaviour).  Used by the builder to derive
        deterministic warning counts.
    """

    name: str
    version: str
    experiment: str
    category: PackageCategory
    language: Language
    lines_of_code: int
    dependencies: Tuple[str, ...] = ()
    requirements: SoftwareRequirements = field(default_factory=SoftwareRequirements)
    fragility: float = 0.1
    description: str = ""

    def __post_init__(self) -> None:
        ensure_identifier(self.name, "package name")
        ensure_identifier(self.experiment, "experiment name")
        if self.lines_of_code <= 0:
            raise ConfigurationError(f"{self.name}: lines_of_code must be positive")
        if not 0.0 <= self.fragility <= 1.0:
            raise ConfigurationError(f"{self.name}: fragility must be in [0, 1]")
        if self.name in self.dependencies:
            raise ConfigurationError(f"{self.name}: package cannot depend on itself")

    @property
    def key(self) -> str:
        """Canonical identifier, e.g. ``"h1-h1rec-4.2"``."""
        return f"{self.name}-{self.version}"

    @property
    def source_digest(self) -> str:
        """Content hash of the (simulated) sources that go into a build.

        Language, code size and fragility are exactly the package-side
        inputs of :meth:`PackageBuilder.build_package` beyond the name,
        version and requirements: they determine the build duration, the
        deterministic warning noise and the artifact size.  Deliberately
        excluded are ``experiment``, ``category``, ``description`` and
        ``dependencies`` — none of them influence the produced
        :class:`~repro.buildsys.builder.BuildResult`, so two experiments
        pinning byte-identical external packages share one digest.
        """
        return stable_digest(
            "package-source",
            self.language.value,
            self.lines_of_code,
            self.fragility,
        )

    def with_requirements(self, requirements: SoftwareRequirements) -> "SoftwarePackage":
        """Return a copy with different environment requirements.

        Porting a package to a new environment (e.g. removing a 32-bit-only
        restriction) is modelled as replacing its requirements; the migration
        planner uses this to apply fixes.
        """
        return replace(self, requirements=requirements)

    def with_version(self, version: str) -> "SoftwarePackage":
        """Return a copy with a bumped version string."""
        return replace(self, version=version)

    def estimated_build_seconds(self) -> float:
        """Rough build duration used for resource accounting on the clients."""
        base = {
            Language.FORTRAN: 0.8,
            Language.CPP: 1.6,
            Language.C: 0.9,
            Language.PYTHON: 0.1,
        }[self.language]
        return base * self.lines_of_code / 1000.0

    def to_dict(self) -> Dict[str, object]:
        """Serialise for the common storage (e.g. the persisted build cache)."""
        return {
            "name": self.name,
            "version": self.version,
            "experiment": self.experiment,
            "category": self.category.value,
            "language": self.language.value,
            "lines_of_code": self.lines_of_code,
            "dependencies": list(self.dependencies),
            "requirements": self.requirements.to_dict(),
            "fragility": self.fragility,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SoftwarePackage":
        """Reconstruct a package serialised by :meth:`to_dict`."""
        return cls(
            name=str(payload["name"]),
            version=str(payload["version"]),
            experiment=str(payload["experiment"]),
            category=PackageCategory(str(payload["category"])),
            language=Language(str(payload["language"])),
            lines_of_code=int(payload["lines_of_code"]),  # type: ignore[arg-type]
            dependencies=tuple(
                str(name) for name in payload.get("dependencies", [])  # type: ignore[union-attr]
            ),
            requirements=SoftwareRequirements.from_dict(
                payload.get("requirements", {})  # type: ignore[arg-type]
            ),
            fragility=float(payload.get("fragility", 0.1)),  # type: ignore[arg-type]
            description=str(payload.get("description", "")),
        )


class PackageInventory:
    """The complete set of packages of one experiment."""

    def __init__(self, experiment: str, packages: Optional[Iterable[SoftwarePackage]] = None):
        self.experiment = ensure_identifier(experiment, "experiment name")
        self._packages: Dict[str, SoftwarePackage] = {}
        for package in packages or []:
            self.add(package)

    def add(self, package: SoftwarePackage) -> None:
        """Add a package, rejecting duplicates and foreign experiments."""
        if package.experiment != self.experiment:
            raise ConfigurationError(
                f"package {package.name} belongs to {package.experiment}, "
                f"not {self.experiment}"
            )
        if package.name in self._packages:
            raise ConfigurationError(f"duplicate package {package.name!r}")
        self._packages[package.name] = package

    def replace(self, package: SoftwarePackage) -> None:
        """Replace an existing package definition (e.g. after porting it)."""
        if package.name not in self._packages:
            raise ConfigurationError(f"unknown package {package.name!r}")
        self._packages[package.name] = package

    def get(self, name: str) -> SoftwarePackage:
        """Return the package called *name*."""
        try:
            return self._packages[name]
        except KeyError:
            raise ConfigurationError(
                f"experiment {self.experiment} has no package {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._packages

    def __len__(self) -> int:
        return len(self._packages)

    def __iter__(self):
        return iter(self.all())

    def all(self) -> List[SoftwarePackage]:
        """All packages sorted by name."""
        return [self._packages[name] for name in sorted(self._packages)]

    def names(self) -> List[str]:
        """Sorted package names."""
        return sorted(self._packages)

    def by_category(self, category: PackageCategory) -> List[SoftwarePackage]:
        """All packages of the given category."""
        return [package for package in self.all() if package.category is category]

    def total_lines_of_code(self) -> int:
        """Summed size of the code base."""
        return sum(package.lines_of_code for package in self.all())

    def validate_dependencies(self) -> List[str]:
        """Return a list of dependency problems (missing packages)."""
        problems = []
        for package in self.all():
            for dependency in package.dependencies:
                if dependency not in self._packages:
                    problems.append(
                        f"{package.name} depends on unknown package {dependency!r}"
                    )
        return problems


__all__ = [
    "PackageCategory",
    "Language",
    "SoftwarePackage",
    "PackageInventory",
]
