"""Bench-trend series: append-only metric history with regression gating.

Every benchmark run appends its key numbers (cells/sec, ledger µs/event,
journal bytes, cache hit rate, …) to one JSONL file per metric under
``benchmarks/_results/trends/``.  The series is the durable half of the
telemetry layer: in-process metrics die with the process, the trend file
survives and makes perf regressions a *query* — ``repro bench-trends
check`` compares the latest point against the trailing median and exits
non-zero past a configurable threshold, which is what the ci.sh gate
runs.

Each point records its ``direction`` (``higher_is_better`` for
throughputs, ``lower_is_better`` for latencies/bytes) so the check knows
which way "worse" lies.  The reader tolerates a truncated final line —
the writer can be killed mid-append without poisoning the series (the
same contract the storage journals honour).
"""

from __future__ import annotations

import json
import os
import statistics
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro._common import ReproError

#: Directory (relative to the repo root / current directory) holding the
#: one-file-per-metric JSONL trend series.
DEFAULT_TRENDS_DIR = os.path.join("benchmarks", "_results", "trends")

#: Allowed values for a trend point's ``direction`` field.
DIRECTIONS = ("higher_is_better", "lower_is_better")

#: Default tolerated relative regression vs the trailing median (25%).
DEFAULT_THRESHOLD = 0.25

#: Default number of trailing points the median is taken over.
DEFAULT_WINDOW = 10


def record_trend(
    metric: str,
    value: float,
    direction: str,
    unit: str = "",
    context: Optional[Mapping[str, object]] = None,
    directory: str = DEFAULT_TRENDS_DIR,
) -> str:
    """Append one point to *metric*'s series; returns the series path."""
    if direction not in DIRECTIONS:
        raise ReproError(
            f"trend direction must be one of {DIRECTIONS}, got {direction!r}"
        )
    os.makedirs(directory, exist_ok=True)
    point = {
        "metric": metric,
        "value": float(value),
        "direction": direction,
        "unit": unit,
        "context": dict(context or {}),
    }
    path = os.path.join(directory, f"{metric}.jsonl")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(point, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return path


def read_trend_series(path: str) -> List[dict]:
    """Read one JSONL series, tolerating a truncated final line."""
    points: List[dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        return points
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            point = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # a crash mid-append truncated the tail; drop it
            raise ReproError(f"corrupted trend record at {path}:{index + 1}")
        if isinstance(point, dict):
            points.append(point)
    return points


@dataclass(frozen=True)
class TrendVerdict:
    """The gate's judgement of one metric series."""

    metric: str
    points: int
    latest: float
    baseline: Optional[float]  # trailing median; None when too few points
    direction: str
    change: Optional[float]  # signed relative change vs baseline
    regressed: bool

    def to_row(self) -> List[object]:
        change = "n/a" if self.change is None else f"{self.change:+.1%}"
        baseline = "n/a" if self.baseline is None else round(self.baseline, 6)
        status = "REGRESSED" if self.regressed else "ok"
        return [
            self.metric,
            self.points,
            round(self.latest, 6),
            baseline,
            change,
            status,
        ]


def check_series(points: List[dict], threshold: float, window: int) -> Optional[TrendVerdict]:
    """Judge one series; ``None`` when it is empty."""
    if not points:
        return None
    latest = points[-1]
    metric = str(latest.get("metric", "unknown"))
    direction = str(latest.get("direction", "lower_is_better"))
    value = float(latest["value"])
    history = [float(point["value"]) for point in points[:-1]][-window:]
    if not history:
        return TrendVerdict(
            metric=metric,
            points=len(points),
            latest=value,
            baseline=None,
            direction=direction,
            change=None,
            regressed=False,
        )
    baseline = statistics.median(history)
    if baseline == 0:
        change = 0.0 if value == 0 else (1.0 if value > 0 else -1.0)
    else:
        change = (value - baseline) / abs(baseline)
    if direction == "higher_is_better":
        regressed = change < -threshold
    else:
        regressed = change > threshold
    return TrendVerdict(
        metric=metric,
        points=len(points),
        latest=value,
        baseline=baseline,
        direction=direction,
        change=change,
        regressed=regressed,
    )


def check_trends(
    directory: str = DEFAULT_TRENDS_DIR,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> Dict[str, TrendVerdict]:
    """Judge every series under *directory*; empty dict when none exist.

    A missing or empty directory is not an error — a fresh checkout has
    no trend history yet and the CI gate must pass on it.
    """
    verdicts: Dict[str, TrendVerdict] = {}
    if not os.path.isdir(directory):
        return verdicts
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".jsonl"):
            continue
        verdict = check_series(
            read_trend_series(os.path.join(directory, name)), threshold, window
        )
        if verdict is not None:
            verdicts[verdict.metric] = verdict
    return verdicts


__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_TRENDS_DIR",
    "DEFAULT_WINDOW",
    "DIRECTIONS",
    "TrendVerdict",
    "check_series",
    "check_trends",
    "read_trend_series",
    "record_trend",
]
