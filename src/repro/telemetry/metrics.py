"""The metrics registry: counters, gauges and bucketed histograms.

The registry is the numeric half of the telemetry layer (spans are the
other half, see :mod:`repro.telemetry.tracing`).  Three design rules keep
it compatible with the determinism contracts pinned elsewhere in the
repo:

* **Injectable monotonic clock.**  Like the scheduler and the service
  layer, the registry never reads the steppable wall clock — durations
  come from an injectable monotonic clock, so metric timestamps can
  never jump with NTP (audited by ci.sh's telemetry-purity stage).
* **Strictly read-only with respect to science.**  Recording a metric
  never touches run documents, catalog records or cache statistics; the
  registry is an additive sink.  ``TestBackendParity`` pins that a fully
  instrumented campaign stays byte-identical to an uninstrumented one.
* **Exact snapshot round-trips.**  ``to_dict``/``from_dict`` reproduce
  the registry state exactly, so metrics can ride along heartbeat
  events and service snapshots without a lossy serialisation step.

Series are labelled (``backend=...``, ``tenant=...``, ``phase=...``);
a series is identified by its metric name plus the sorted label items.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro._common import ReproError

#: Default histogram bucket upper bounds, in seconds.  Tuned for the
#: durations this system actually sees: cache probes (microseconds) up
#: to full campaign dispatches (tens of seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class HistogramSeries:
    """One labelled histogram series: bucket counts plus sum/count/min/max."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ReproError("a histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +Inf overflow
        self.total = 0.0
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "minimum": None if self.count == 0 else self.minimum,
            "maximum": None if self.count == 0 else self.maximum,
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "HistogramSeries":
        series = cls(buckets=document["buckets"])
        series.counts = [int(value) for value in document["counts"]]
        series.total = float(document["total"])
        series.count = int(document["count"])
        minimum = document.get("minimum")
        maximum = document.get("maximum")
        series.minimum = math.inf if minimum is None else float(minimum)
        series.maximum = -math.inf if maximum is None else float(maximum)
        return series


class MetricsRegistry:
    """Counters, gauges and histograms with labelled series.

    ``clock`` is an injectable monotonic clock used to stamp the
    registry's creation and last-update offsets; it defaults to
    :func:`time.monotonic` and must never be a wall clock.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or time.monotonic
        self._started = self._clock()
        self._counters: Dict[Tuple[str, LabelItems], float] = {}
        self._gauges: Dict[Tuple[str, LabelItems], float] = {}
        self._histograms: Dict[Tuple[str, LabelItems], HistogramSeries] = {}
        self._declared_buckets: Dict[str, Tuple[float, ...]] = {}
        self.last_update_offset = 0.0

    # -- recording ----------------------------------------------------

    def _touch(self) -> None:
        self.last_update_offset = self._clock() - self._started

    def increment(self, name: str, amount: float = 1.0, **labels: object) -> None:
        key = (name, _label_items(labels))
        self._counters[key] = self._counters.get(key, 0.0) + float(amount)
        self._touch()

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        self._gauges[(name, _label_items(labels))] = float(value)
        self._touch()

    def declare_histogram(self, name: str, buckets: Sequence[float]) -> None:
        """Fix the bucket bounds used by future series of *name*."""
        self._declared_buckets[name] = tuple(sorted(float(b) for b in buckets))

    def observe(self, name: str, value: float, **labels: object) -> None:
        key = (name, _label_items(labels))
        series = self._histograms.get(key)
        if series is None:
            buckets = self._declared_buckets.get(name, DEFAULT_BUCKETS)
            series = self._histograms[key] = HistogramSeries(buckets=buckets)
        series.observe(value)
        self._touch()

    def time_block(self, name: str, **labels: object):
        """Context manager observing the monotonic duration of a block."""
        return _Timer(self, name, labels)

    # -- reading ------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        return self._counters.get((name, _label_items(labels)), 0.0)

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        return self._gauges.get((name, _label_items(labels)))

    def histogram(self, name: str, **labels: object) -> Optional[HistogramSeries]:
        return self._histograms.get((name, _label_items(labels)))

    def counters(self) -> Iterable[Tuple[str, LabelItems, float]]:
        for (name, labels), value in sorted(self._counters.items()):
            yield name, labels, value

    def gauges(self) -> Iterable[Tuple[str, LabelItems, float]]:
        for (name, labels), value in sorted(self._gauges.items()):
            yield name, labels, value

    def histograms(self) -> Iterable[Tuple[str, LabelItems, HistogramSeries]]:
        for (name, labels), series in sorted(self._histograms.items()):
            yield name, labels, series

    def summary_rows(self) -> List[List[object]]:
        """Flat ``[kind, series, value]`` rows for tables and dashboards."""
        rows: List[List[object]] = []
        for name, labels, value in self.counters():
            rows.append(["counter", _series_label(name, labels), _round(value)])
        for name, labels, value in self.gauges():
            rows.append(["gauge", _series_label(name, labels), _round(value)])
        for name, labels, series in self.histograms():
            rows.append([
                "histogram",
                _series_label(name, labels),
                f"count={series.count} mean={series.mean:.6f} max={series.maximum if series.count else 0.0:.6f}",
            ])
        return rows

    # -- snapshots ----------------------------------------------------

    def snapshot(self) -> dict:
        return self.to_dict()

    def to_dict(self) -> dict:
        return {
            "counters": [
                {"name": name, "labels": [list(item) for item in labels], "value": value}
                for name, labels, value in self.counters()
            ],
            "gauges": [
                {"name": name, "labels": [list(item) for item in labels], "value": value}
                for name, labels, value in self.gauges()
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": [list(item) for item in labels],
                    "series": series.to_dict(),
                }
                for name, labels, series in self.histograms()
            ],
            "last_update_offset": self.last_update_offset,
        }

    @classmethod
    def from_dict(
        cls, document: Mapping, clock: Optional[Callable[[], float]] = None
    ) -> "MetricsRegistry":
        registry = cls(clock=clock)
        for entry in document.get("counters", ()):
            labels = tuple((str(k), str(v)) for k, v in entry["labels"])
            registry._counters[(entry["name"], labels)] = float(entry["value"])
        for entry in document.get("gauges", ()):
            labels = tuple((str(k), str(v)) for k, v in entry["labels"])
            registry._gauges[(entry["name"], labels)] = float(entry["value"])
        for entry in document.get("histograms", ()):
            labels = tuple((str(k), str(v)) for k, v in entry["labels"])
            registry._histograms[(entry["name"], labels)] = HistogramSeries.from_dict(
                entry["series"]
            )
        registry.last_update_offset = float(document.get("last_update_offset", 0.0))
        return registry


class _Timer:
    def __init__(self, registry: MetricsRegistry, name: str, labels: Mapping[str, object]):
        self._registry = registry
        self._name = name
        self._labels = labels
        self._entered = 0.0

    def __enter__(self) -> "_Timer":
        self._entered = self._registry._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = self._registry._clock() - self._entered
        self._registry.observe(self._name, elapsed, **self._labels)


def _series_label(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


def _round(value: float) -> object:
    return int(value) if float(value).is_integer() else round(value, 6)


__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramSeries",
    "MetricsRegistry",
]
