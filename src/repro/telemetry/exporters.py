"""Exporters: Prometheus text exposition for the metrics registry.

The Prometheus text format is the lingua franca of scrape-based
monitoring; ``repro metrics`` prints it so a node_exporter-style textfile
collector (or a curl in a cron job) can ship the numbers without any new
dependency.  Counters gain a ``_total``-preserving name, histograms emit
the conventional ``_bucket``/``_sum``/``_count`` triplet with an
explicit ``+Inf`` bucket, and every name is prefixed ``repro_`` and
sanitised to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` metric charset.
"""

from __future__ import annotations

import re
from typing import List

from repro.telemetry.metrics import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Prefix applied to every exported metric name.
PREFIX = "repro_"


def _metric_name(name: str) -> str:
    sanitised = _NAME_RE.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return PREFIX + sanitised


def _label_pairs(labels) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{_LABEL_RE.sub("_", key)}="{_escape(value)}"' for key, value in labels
    )
    return "{" + rendered + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render *registry* in the Prometheus text exposition format."""
    lines: List[str] = []
    # One TYPE line per metric family: the registry iterators are sorted,
    # so series of one family are adjacent and the family header can be
    # emitted exactly once (repeating it is a text-format violation).
    typed = set()
    for name, labels, value in registry.counters():
        metric = _metric_name(name)
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{_label_pairs(labels)} {_format_value(value)}")
    for name, labels, value in registry.gauges():
        metric = _metric_name(name)
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{_label_pairs(labels)} {_format_value(value)}")
    for name, labels, series in registry.histograms():
        metric = _metric_name(name)
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(series.buckets, series.counts):
            cumulative += count
            bucket_labels = tuple(labels) + (("le", _format_value(bound)),)
            lines.append(f"{metric}_bucket{_label_pairs(bucket_labels)} {cumulative}")
        bucket_labels = tuple(labels) + (("le", "+Inf"),)
        lines.append(f"{metric}_bucket{_label_pairs(bucket_labels)} {series.count}")
        lines.append(f"{metric}_sum{_label_pairs(labels)} {_format_value(series.total)}")
        lines.append(f"{metric}_count{_label_pairs(labels)} {series.count}")
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = ["PREFIX", "prometheus_text"]
