"""``MetricsObserver``: the lifecycle plugin that turns events into metrics.

The lifecycle bus already carries everything worth counting — cells
completing, campaigns finishing, submissions queueing, tenants being
throttled, heartbeat snapshots of the whole daemon.  This observer is the
bridge: it subscribes to all of it and folds each event into the shared
:class:`~repro.telemetry.metrics.MetricsRegistry`, so ``repro metrics``
and the service dashboard see live numbers without any subsystem pushing
metrics itself.

Like every :class:`~repro.scheduler.lifecycle.LifecycleObserver` it is
strictly read-only with respect to science: it never touches run
documents, catalog records or cache statistics, and ``TestBackendParity``
pins that attaching it leaves all of them byte-identical.
"""

from __future__ import annotations

from repro.scheduler.lifecycle import (
    EVENT_BUDGET_EXCEEDED,
    EVENT_CAMPAIGN_FINISHED,
    EVENT_CELL_COMPLETED,
    EVENT_DEADLINE_EXCEEDED,
    EVENT_EVOLUTION_RECORDED,
    EVENT_HEARTBEAT,
    EVENT_REGRESSION_DETECTED,
    EVENT_SUBMISSION_CANCELLED,
    EVENT_SUBMISSION_QUEUED,
    EVENT_SUBMISSION_STARTED,
    EVENT_TENANT_THROTTLED,
    LIFECYCLE_EVENTS,
    EventContext,
    LifecycleEvent,
    LifecycleObserver,
)
from repro.telemetry.metrics import MetricsRegistry

#: Heartbeat snapshot entries mirrored into gauges, payload key -> gauge.
_HEARTBEAT_GAUGES = {
    "queue_depth": "service_queue_depth",
    "running": "service_running",
    "dispatched": "service_dispatched",
    "completed": "service_completed",
    "failed": "service_failed",
    "cancelled": "service_cancelled",
    "worker_utilisation": "service_worker_utilisation",
    "cache_entries": "cache_entries",
    "cache_hit_rate": "cache_hit_rate",
    "cache_bytes": "cache_bytes",
}


class MetricsObserver(LifecycleObserver):
    """Fold every lifecycle event into a metrics registry."""

    events = LIFECYCLE_EVENTS

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def handle(self, event: LifecycleEvent, context: EventContext) -> None:
        payload = event.payload or {}
        self.registry.increment("lifecycle_events_total", event=event.name)
        if event.name == EVENT_CELL_COMPLETED:
            outcome = "passed" if payload.get("passed") else "failed"
            self.registry.increment("cells_total", outcome=outcome)
        elif event.name == EVENT_CAMPAIGN_FINISHED:
            self.registry.increment("campaigns_total")
        elif event.name == EVENT_REGRESSION_DETECTED:
            self.registry.increment("regressions_total")
        elif event.name in (EVENT_DEADLINE_EXCEEDED, EVENT_BUDGET_EXCEEDED):
            self.registry.increment("campaign_limit_events_total", kind=event.name)
        elif event.name == EVENT_EVOLUTION_RECORDED:
            self.registry.increment("evolutions_total")
        elif event.name in (
            EVENT_SUBMISSION_QUEUED,
            EVENT_SUBMISSION_STARTED,
            EVENT_SUBMISSION_CANCELLED,
        ):
            tenant = payload.get("tenant", "unknown")
            self.registry.increment(
                "service_submissions_total", state=event.name, tenant=tenant
            )
        elif event.name == EVENT_TENANT_THROTTLED:
            self.registry.increment(
                "service_throttled_total", tenant=payload.get("tenant", "unknown")
            )
        elif event.name == EVENT_HEARTBEAT:
            self.registry.increment("service_heartbeats_total")
            for key, gauge in _HEARTBEAT_GAUGES.items():
                value = payload.get(key)
                if isinstance(value, (int, float)):
                    self.registry.set_gauge(gauge, float(value))


__all__ = ["MetricsObserver"]
