"""The span tracer: parent/child timing trees over the hot paths.

``tracer.span("build", task=...)`` opens a context manager; the enclosed
block becomes one :class:`Span` in a per-thread parent/child tree.
Finished spans accumulate on the tracer in completion order and can be
exported two ways:

* :func:`SpanTracer.chrome_trace` — Chrome ``trace_event`` JSON that
  loads directly in ``about:tracing`` / Perfetto (``repro trace``).
* :func:`SpanTracer.phase_rows` — per-phase timing aggregation (calls,
  cumulative seconds, *self* seconds with child time subtracted) feeding
  the campaign summary and the ``reports/telemetry.html`` status page.

Determinism contract: span *durations* are wall-ish (monotonic clock)
and excluded from every bit-identity suite, but the span *sequence*
emitted by the deterministic cell pass (``category="cell"``) must be
identical on all four backends — :func:`SpanTracer.sequence` extracts
exactly that comparable shape and ``TestBackendParity`` pins it.

Categories partition the tree: ``cell`` for the deterministic cell pass,
``dispatch`` for backend wall-clock execution, ``journal``/``ledger``/
``service`` for persistence and daemon paths.  A span without an
explicit category inherits its parent's, so instrumented leaf calls stay
terse.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: Category given to root spans that declare none.
DEFAULT_CATEGORY = "general"


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    span_id: int
    name: str
    category: str
    start: float
    attributes: Tuple[Tuple[str, str], ...]
    parent_id: Optional[int] = None
    thread: int = 0
    end: Optional[float] = None
    child_seconds: float = 0.0

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def self_seconds(self) -> float:
        return max(0.0, self.duration - self.child_seconds)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "attributes": {key: value for key, value in self.attributes},
        }


class SpanTracer:
    """Collects spans on an injectable monotonic clock.

    The tracer is thread-safe: each thread keeps its own open-span stack
    (so parentage never crosses threads), while the finished-span list is
    shared under a lock.  Completion order within one thread is
    deterministic — children close before parents — which is what makes
    the cell-pass sequence comparable across backends.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or time.monotonic
        self._origin = self._clock()
        self._lock = threading.Lock()
        self._stacks: Dict[int, List[Span]] = {}
        self._thread_order: Dict[int, int] = {}
        self._next_id = 0
        self.spans: List[Span] = []

    # -- recording ----------------------------------------------------

    def span(self, name: str, category: Optional[str] = None, **attributes: object):
        return _SpanContext(self, name, category, attributes)

    def _open(self, name: str, category: Optional[str], attributes) -> Span:
        ident = threading.get_ident()
        with self._lock:
            thread = self._thread_order.setdefault(ident, len(self._thread_order))
            stack = self._stacks.setdefault(ident, [])
            parent = stack[-1] if stack else None
            if category is None:
                category = parent.category if parent else DEFAULT_CATEGORY
            self._next_id += 1
            span = Span(
                span_id=self._next_id,
                name=name,
                category=category,
                start=self._clock() - self._origin,
                attributes=tuple(
                    sorted((str(key), str(value)) for key, value in attributes.items())
                ),
                parent_id=parent.span_id if parent else None,
                thread=thread,
            )
            stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        ident = threading.get_ident()
        with self._lock:
            span.end = self._clock() - self._origin
            stack = self._stacks.get(ident, [])
            if stack and stack[-1] is span:
                stack.pop()
            parent = stack[-1] if stack else None
            if parent is not None:
                parent.child_seconds += span.duration
            self.spans.append(span)

    # -- reading ------------------------------------------------------

    def sequence(
        self, category: Optional[str] = None
    ) -> Tuple[Tuple[str, Tuple[Tuple[str, str], ...]], ...]:
        """The comparable span shape: ``(name, attributes)`` in order.

        Durations, ids and thread assignments are deliberately dropped —
        this is the part of the trace the determinism contract covers.
        """
        with self._lock:
            return tuple(
                (span.name, span.attributes)
                for span in self.spans
                if category is None or span.category == category
            )

    def phase_rows(self) -> List[List[object]]:
        """Per-phase aggregation: calls, cumulative and self seconds."""
        totals: Dict[Tuple[str, str], List[float]] = {}
        with self._lock:
            spans = list(self.spans)
        for span in spans:
            key = (span.category, span.name)
            bucket = totals.setdefault(key, [0.0, 0.0, 0.0])
            bucket[0] += 1
            bucket[1] += span.duration
            bucket[2] += span.self_seconds
        rows: List[List[object]] = []
        for (category, name), (calls, cumulative, self_seconds) in sorted(
            totals.items(), key=lambda item: (-item[1][1], item[0])
        ):
            rows.append(
                [
                    category,
                    name,
                    int(calls),
                    round(cumulative, 6),
                    round(self_seconds, 6),
                ]
            )
        return rows

    def chrome_trace(self) -> dict:
        """The trace as a Chrome ``trace_event`` document (µs units)."""
        with self._lock:
            spans = list(self.spans)
        events = []
        for span in sorted(spans, key=lambda item: (item.start, item.span_id)):
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": round(span.start * 1_000_000, 3),
                    "dur": round(span.duration * 1_000_000, 3),
                    "pid": 1,
                    "tid": span.thread,
                    "args": {key: value for key, value in span.attributes},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro telemetry tracer"},
        }

    def reset(self) -> None:
        """Drop finished spans (open stacks are left untouched)."""
        with self._lock:
            self.spans.clear()


@dataclass
class _SpanContext:
    tracer: SpanTracer
    name: str
    category: Optional[str]
    attributes: dict
    _span: Optional[Span] = field(default=None, repr=False)

    def __enter__(self) -> Span:
        self._span = self.tracer._open(self.name, self.category, self.attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is not None:
            self.tracer._close(self._span)


__all__ = ["DEFAULT_CATEGORY", "Span", "SpanTracer"]
