"""Unified telemetry: metrics, tracing spans, exporters and trend gating.

One bundle object, :class:`Telemetry`, carries the two live sinks —
a :class:`~repro.telemetry.metrics.MetricsRegistry` and a
:class:`~repro.telemetry.tracing.SpanTracer` — through the whole stack:
``SPSystem(telemetry=...)`` hands it to the scheduler, the cache
builder, the execution backends, the history plugin and the service
daemon.  The default is :data:`NULL_TELEMETRY`, a no-op bundle whose
``span``/``increment`` calls cost one method dispatch, so uninstrumented
runs pay (almost) nothing and the overhead benchmark can compare the two
honestly.

Instrumentation wraps science, never leaks into it: nothing under
``hepdata/`` or ``environment/`` may import this package (audited by
ci.sh and ``tests/test_tooling_ci.py``), and attaching a full bundle
leaves run documents, catalog records and cache statistics byte-identical
(pinned by ``TestBackendParity``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.exporters import prometheus_text
from repro.telemetry.metrics import HistogramSeries, MetricsRegistry
from repro.telemetry.tracing import Span, SpanTracer
from repro.telemetry.trends import (
    DEFAULT_THRESHOLD,
    DEFAULT_TRENDS_DIR,
    DEFAULT_WINDOW,
    TrendVerdict,
    check_series,
    check_trends,
    read_trend_series,
    record_trend,
)


class _NullSpan:
    """A reusable no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Span API that records nothing; every call is near-free."""

    __slots__ = ()
    spans = ()

    def span(self, name, category=None, **attributes):
        return _NULL_SPAN

    def sequence(self, category=None):
        return ()

    def phase_rows(self):
        return []

    def chrome_trace(self):
        return {"traceEvents": [], "displayTimeUnit": "ms", "otherData": {}}

    def reset(self):
        return None


class NullMetrics:
    """Metrics API that records nothing; every call is near-free."""

    __slots__ = ()

    def increment(self, name, amount=1.0, **labels):
        return None

    def set_gauge(self, name, value, **labels):
        return None

    def observe(self, name, value, **labels):
        return None

    def declare_histogram(self, name, buckets):
        return None

    def time_block(self, name, **labels):
        return _NULL_SPAN

    def counter_value(self, name, **labels):
        return 0.0

    def gauge_value(self, name, **labels):
        return None

    def histogram(self, name, **labels):
        return None

    def counters(self):
        return ()

    def gauges(self):
        return ()

    def histograms(self):
        return ()

    def summary_rows(self):
        return []

    def snapshot(self):
        return self.to_dict()

    def to_dict(self):
        return {"counters": [], "gauges": [], "histograms": [], "last_update_offset": 0.0}


class Telemetry:
    """The bundle handed through the stack: a registry plus a tracer."""

    def __init__(self, metrics, tracer, enabled: bool = True) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.enabled = enabled

    @classmethod
    def create(cls, clock: Optional[Callable[[], float]] = None) -> "Telemetry":
        """A live bundle; *clock* must be monotonic when given."""
        return cls(
            metrics=MetricsRegistry(clock=clock),
            tracer=SpanTracer(clock=clock),
            enabled=True,
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(metrics=NullMetrics(), tracer=NullTracer(), enabled=False)


#: The default bundle: records nothing, costs (almost) nothing.
NULL_TELEMETRY = Telemetry.disabled()


def __getattr__(name: str):
    # MetricsObserver pulls in the scheduler's lifecycle module; importing
    # it lazily keeps this package importable from inside
    # ``repro.scheduler`` (the cache and backends take a telemetry handle)
    # without a circular import.
    if name == "MetricsObserver":
        from repro.telemetry.observer import MetricsObserver

        return MetricsObserver
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_TRENDS_DIR",
    "DEFAULT_WINDOW",
    "HistogramSeries",
    "MetricsObserver",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullMetrics",
    "NullTracer",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TrendVerdict",
    "check_series",
    "check_trends",
    "prometheus_text",
    "read_trend_series",
    "record_trend",
]
