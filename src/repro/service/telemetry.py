"""Live service telemetry: the supervised heartbeat worker and report rows.

The daemon's telemetry is event-first: every beat is a ``heartbeat``
lifecycle event whose payload is the full service snapshot (queue depth,
per-tenant backlog, worker utilisation, cache hit rate), published on the
same bus the campaigns report through — a ``FileEventSink`` or any other
observer sees scheduling and telemetry in one interleaved stream.

:class:`HeartbeatWorker` drives the beats from a background thread.  It is
*supervised* in the classic sense: the loop tolerates a bounded number of
consecutive beat failures (self-reporting each one), exits when the bound
is exceeded, and :meth:`HeartbeatWorker.supervise` restarts a dead worker
— so a single poisoned snapshot cannot silently kill telemetry forever.

The row helpers at the bottom shape ledger/queue/snapshot state for
``format_table`` and the status dashboard; the CLI and
:meth:`~repro.reporting.webpages.StatusPageGenerator.service_page` share
them so the terminal and the HTML never disagree.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.daemon import ValidationService
    from repro.service.queue import Submission
    from repro.service.tenants import TenantLedger


class HeartbeatWorker:
    """Background thread beating a :class:`ValidationService`'s telemetry.

    Each beat calls ``service.beat(source="worker")`` which emits one
    ``heartbeat`` lifecycle event.  Failures are counted and self-reported
    through :meth:`status`; after *max_consecutive_failures* in a row the
    thread exits and waits for :meth:`supervise` to restart it.
    """

    def __init__(
        self,
        service: "ValidationService",
        interval: float = 1.0,
        max_consecutive_failures: int = 3,
    ) -> None:
        self.service = service
        self.interval = interval
        self.max_consecutive_failures = max_consecutive_failures
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.beats = 0
        self.failures = 0
        self.restarts = 0
        self.last_error: Optional[str] = None

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Start the worker thread (idempotent while it is alive)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-heartbeat", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Signal the worker to exit and wait for it."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)

    def _run(self) -> None:
        consecutive = 0
        while not self._stop.wait(self.interval):
            try:
                self.service.beat(source="worker")
            except Exception as error:  # noqa: BLE001 - self-reporting worker
                with self._lock:
                    self.failures += 1
                    # Keep the exception *type* alongside the message: a bare
                    # str(KeyError("x")) renders as just "'x'", which is
                    # useless on the dashboard.
                    self.last_error = f"{type(error).__name__}: {error}"
                consecutive += 1
                if consecutive >= self.max_consecutive_failures:
                    # Too many poisoned beats in a row: die visibly and
                    # let supervise() decide whether to restart.
                    return
            else:
                with self._lock:
                    self.beats += 1
                consecutive = 0

    @property
    def alive(self) -> bool:
        """True while the worker thread is running."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def supervise(self) -> bool:
        """Restart the worker if it died without being stopped.

        Returns True when a restart happened.  A worker that was never
        started, is still alive, or was deliberately stopped is left alone.
        """
        with self._lock:
            thread = self._thread
            if thread is None or thread.is_alive() or self._stop.is_set():
                return False
            self.restarts += 1
            self._thread = threading.Thread(
                target=self._run, name="repro-heartbeat", daemon=True
            )
            self._thread.start()
            return True

    def status(self) -> Dict[str, object]:
        """Self-reported worker health (shown on the dashboard)."""
        with self._lock:
            return {
                "alive": self.alive,
                "interval_seconds": self.interval,
                "beats": self.beats,
                "failures": self.failures,
                "restarts": self.restarts,
                "last_error": self.last_error or "",
            }


# -- report rows ---------------------------------------------------------------
def tenant_rows(
    ledger: "TenantLedger", backlog: Optional[Mapping[str, int]] = None
) -> List[Dict[str, object]]:
    """One row per registered tenant: policy + backlog + usage accounting."""
    backlog = backlog or {}
    rows = []
    for tenant in ledger.tenants():
        policy = ledger.policy(tenant)
        usage = ledger.usage(tenant)
        rows.append(
            {
                "tenant": tenant,
                "weight": policy.weight,
                "rate/s": policy.rate_per_second,
                "queued": backlog.get(tenant, 0),
                "submitted": usage.submissions,
                "completed": usage.completed,
                "failed": usage.failed,
                "cancelled": usage.cancelled,
                "rejected": usage.rejected,
                "cells": usage.cells,
                "build s": round(usage.build_seconds, 2),
                "cache hits": usage.cache_hits,
                "shared hits": usage.shared_hits,
                "donated": usage.donated_builds,
                "cache bytes": usage.cache_bytes,
            }
        )
    return rows


def submission_rows(
    submissions: Iterable["Submission"],
) -> List[Dict[str, object]]:
    """One row per submission, in arrival order."""
    rows = []
    for submission in sorted(submissions, key=lambda item: item.sequence):
        rows.append(
            {
                "submission": submission.submission_id,
                "tenant": submission.tenant,
                "priority": submission.priority,
                "status": submission.status,
                "campaign": submission.campaign_id or "-",
                "cells": submission.cells,
                "error": submission.error or "",
            }
        )
    return rows


def snapshot_rows(snapshot: Mapping[str, object]) -> List[Dict[str, object]]:
    """``metric`` / ``value`` rows for a service heartbeat snapshot."""
    rows = []
    for metric, value in snapshot.items():
        if metric == "backlog":
            value = ", ".join(
                f"{tenant}={count}"
                for tenant, count in sorted(value.items())  # type: ignore[union-attr]
            ) or "-"
        if isinstance(value, float):
            value = round(value, 4)
        rows.append({"metric": metric, "value": value})
    return rows


__all__ = [
    "HeartbeatWorker",
    "tenant_rows",
    "submission_rows",
    "snapshot_rows",
]
