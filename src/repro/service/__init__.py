"""Validation-as-a-service: the multi-tenant submission daemon.

The paper's validation suite is an *installation service*: experiments
hand their software over and the host runs the validation on their
behalf.  This package is that service's front door — a long-running
daemon (`repro serve`) accepting campaign submissions from many tenants,
scheduling them fairly, rate-limiting abusers, billing usage and
publishing live telemetry — all on top of the unchanged deterministic
execution core (every campaign still flows through ``SPSystem.submit``).
"""

from repro.service.daemon import (
    DEFAULT_POLICY,
    ValidationService,
    cancel_persisted,
    load_submissions,
)
from repro.service.queue import PRIORITY_LANES, Submission, SubmissionQueue
from repro.service.telemetry import (
    HeartbeatWorker,
    snapshot_rows,
    submission_rows,
    tenant_rows,
)
from repro.service.tenants import (
    SERVICE_NAMESPACE,
    ServiceRateLimited,
    TenantLedger,
    TenantPolicy,
    TenantUsage,
    TokenBucket,
)

__all__ = [
    "DEFAULT_POLICY",
    "PRIORITY_LANES",
    "SERVICE_NAMESPACE",
    "HeartbeatWorker",
    "ServiceRateLimited",
    "Submission",
    "SubmissionQueue",
    "TenantLedger",
    "TenantPolicy",
    "TenantUsage",
    "TokenBucket",
    "ValidationService",
    "cancel_persisted",
    "load_submissions",
    "snapshot_rows",
    "submission_rows",
    "tenant_rows",
]
