"""The multi-tenant submission queue: priority lanes + weighted fair share.

A :class:`Submission` is one tenant's request to run a
:class:`~repro.scheduler.spec.CampaignSpec`; the :class:`SubmissionQueue`
holds submissions from many tenants and decides dispatch order:

* **Priority lanes** (``high`` / ``normal`` / ``low``): a higher lane is
  always drained before a lower one — the queue-level form of campaign
  preemption (an urgent validation jumps every queued bulk sweep).
* **Weighted round-robin fair share** within a lane: tenants take turns in
  lexicographic order, each taking up to ``weight`` consecutive
  submissions per turn — a tenant with weight 2 gets two dispatches for
  every one of a weight-1 tenant, and a single tenant can never starve
  the others by queueing first.
* **Per-tenant FIFO**: within one tenant (and lane) submissions dispatch
  in arrival order, always.

The scheduling state is deliberately a pure function of the queue content
and the dispatch history — never of wall-clock arrival timing across
tenants — so a drain of the same per-tenant FIFO content produces the
same dispatch order no matter how the submitting threads interleaved.
That determinism is what makes the daemon's output byte-identical to a
serial replay of the same specs.

This module is storage-free and system-free: persistence of queued
submissions is the daemon's concern (:mod:`repro.service.daemon`).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional

from repro._common import SchedulingError
from repro.scheduler.spec import CampaignSpec

#: Dispatch lanes, drained strictly in this order.
PRIORITY_LANES = ("high", "normal", "low")

#: Submission lifecycle states.
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"
STATUS_CANCELLED = "cancelled"


@dataclass
class Submission:
    """One tenant's queued campaign: the daemon's unit of work.

    The dataclass round-trips through :meth:`to_dict` / :meth:`from_dict`
    (the spec nests as its own exact-round-trip document), which is how a
    queued submission survives a daemon restart in the ``service`` storage
    namespace.
    """

    submission_id: str
    tenant: str
    spec: CampaignSpec
    priority: str = "normal"
    #: Daemon-wide arrival counter; FIFO order within a tenant.
    sequence: int = 0
    status: str = STATUS_QUEUED
    campaign_id: Optional[str] = None
    error: Optional[str] = None
    #: Matrix cells the completed campaign executed.
    cells: int = 0
    #: The owning daemon, when this ticket came from a live one (never
    #: serialised); lets callers cancel on the handle.
    _service: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_LANES:
            raise SchedulingError(
                f"unknown priority {self.priority!r} "
                f"(known lanes: {', '.join(PRIORITY_LANES)})"
            )

    def cancel(self) -> "Submission":
        """Cancel this submission on the daemon that issued it."""
        if self._service is None:
            raise SchedulingError(
                f"submission {self.submission_id} is detached from its "
                "daemon; cancel through the service instead"
            )
        return self._service.cancel(self.submission_id)  # type: ignore[attr-defined]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view; :meth:`from_dict` round-trips it."""
        return {
            "submission_id": self.submission_id,
            "tenant": self.tenant,
            "spec": self.spec.to_dict(),
            "priority": self.priority,
            "sequence": self.sequence,
            "status": self.status,
            "campaign_id": self.campaign_id,
            "error": self.error,
            "cells": self.cells,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Submission":
        """Reconstruct a submission serialised by :meth:`to_dict`."""
        try:
            return cls(
                submission_id=str(payload["submission_id"]),
                tenant=str(payload["tenant"]),
                spec=CampaignSpec.from_dict(dict(payload["spec"])),  # type: ignore[arg-type]
                priority=str(payload.get("priority", "normal")),
                sequence=int(payload.get("sequence", 0)),  # type: ignore[arg-type]
                status=str(payload.get("status", STATUS_QUEUED)),
                campaign_id=(
                    None
                    if payload.get("campaign_id") is None
                    else str(payload["campaign_id"])
                ),
                error=(
                    None if payload.get("error") is None else str(payload["error"])
                ),
                cells=int(payload.get("cells", 0)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SchedulingError(
                f"invalid submission document: {error}"
            ) from error


class SubmissionQueue:
    """Thread-safe priority + weighted-fair-share submission queue."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        #: lane -> tenant -> FIFO of queued submissions.
        self._lanes: Dict[str, Dict[str, Deque[Submission]]] = {
            lane: {} for lane in PRIORITY_LANES
        }
        #: Per-lane fair-share cursor: the tenant currently taking its turn
        #: and how many submissions it has taken this turn.
        self._cursor: Dict[str, Optional[str]] = {lane: None for lane in PRIORITY_LANES}
        self._taken: Dict[str, int] = {lane: 0 for lane in PRIORITY_LANES}

    # -- producers -------------------------------------------------------------
    def enqueue(self, submission: Submission) -> None:
        """Append a submission to its tenant's FIFO in its priority lane."""
        with self._work:
            tenants = self._lanes[submission.priority]
            tenants.setdefault(submission.tenant, deque()).append(submission)
            self._work.notify_all()

    def cancel(self, submission_id: str) -> Submission:
        """Remove a still-queued submission; raises when it is not queued."""
        with self._lock:
            for lane in PRIORITY_LANES:
                for tenant, fifo in self._lanes[lane].items():
                    for submission in fifo:
                        if submission.submission_id == submission_id:
                            fifo.remove(submission)
                            return submission
        raise SchedulingError(
            f"submission {submission_id!r} is not queued (already "
            "dispatched, cancelled or unknown)"
        )

    # -- consumer --------------------------------------------------------------
    def next_submission(
        self, weights: Optional[Mapping[str, int]] = None
    ) -> Optional[Submission]:
        """Pop the next submission under fair-share scheduling, or ``None``.

        *weights* maps tenant names to fair-share weights (default 1): the
        cursor tenant takes up to ``weight`` consecutive submissions
        before the turn passes to the lexicographically next tenant with
        queued work in the same lane.
        """
        weights = weights or {}
        with self._lock:
            for lane in PRIORITY_LANES:
                submission = self._next_in_lane(lane, weights)
                if submission is not None:
                    return submission
            return None

    def _next_in_lane(
        self, lane: str, weights: Mapping[str, int]
    ) -> Optional[Submission]:
        tenants = sorted(
            tenant for tenant, fifo in self._lanes[lane].items() if fifo
        )
        if not tenants:
            return None
        cursor = self._cursor[lane]
        if cursor not in tenants:
            # The cursor tenant drained (or never existed): the turn passes
            # to its lexicographic successor, wrapping around.
            successors = [tenant for tenant in tenants if cursor is None or tenant > cursor]
            cursor = successors[0] if successors else tenants[0]
            self._taken[lane] = 0
        submission = self._lanes[lane][cursor].popleft()
        self._taken[lane] += 1
        if self._taken[lane] >= max(1, int(weights.get(cursor, 1))):
            remaining = sorted(
                tenant for tenant, fifo in self._lanes[lane].items() if fifo
            )
            if remaining:
                successors = [tenant for tenant in remaining if tenant > cursor]
                cursor = successors[0] if successors else remaining[0]
            self._taken[lane] = 0
        self._cursor[lane] = cursor
        return submission

    def wait_for_work(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is non-empty (or the timeout passes)."""
        with self._work:
            if self._depth_locked() > 0:
                return True
            self._work.wait(timeout)
            return self._depth_locked() > 0

    # -- inspection ------------------------------------------------------------
    def _depth_locked(self) -> int:
        return sum(
            len(fifo)
            for tenants in self._lanes.values()
            for fifo in tenants.values()
        )

    def depth(self) -> int:
        """How many submissions are queued across all lanes and tenants."""
        with self._lock:
            return self._depth_locked()

    def backlog(self) -> Dict[str, int]:
        """Queued submissions per tenant (tenants with work only)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for tenants in self._lanes.values():
                for tenant, fifo in tenants.items():
                    if fifo:
                        counts[tenant] = counts.get(tenant, 0) + len(fifo)
            return dict(sorted(counts.items()))

    def pending(self) -> List[Submission]:
        """Every queued submission, in arrival order."""
        with self._lock:
            queued = [
                submission
                for tenants in self._lanes.values()
                for fifo in tenants.values()
                for submission in fifo
            ]
            return sorted(queued, key=lambda submission: submission.sequence)


__all__ = [
    "PRIORITY_LANES",
    "STATUS_QUEUED",
    "STATUS_RUNNING",
    "STATUS_COMPLETED",
    "STATUS_FAILED",
    "STATUS_CANCELLED",
    "Submission",
    "SubmissionQueue",
]
