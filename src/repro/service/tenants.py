"""Tenant policies, token-bucket rate limits and the persisted usage ledger.

The validation service is multi-tenant: several experiment groups share
one daemon, one build cache and one worker pool.  This module carries the
per-tenant state:

* :class:`TenantPolicy` — declared fair-share weight and token-bucket rate
  limit for one tenant.
* :class:`TokenBucket` — the classic refilling bucket, on an *injectable*
  clock (``time.monotonic`` by default — the service layer never reads
  wall-clock time) so tests drive it with a manual clock.  Rejections
  report how long the caller has to wait.
* :class:`TenantUsage` / :class:`TenantLedger` — cost accounting: matrix
  cells executed, simulated build-seconds consumed, cache bytes added and
  builds *donated* to other tenants through the shared cache.  The ledger
  persists into the mirrored ``service`` storage namespace, so a restarted
  daemon resumes billing where the previous one stopped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro._common import SchedulingError, ensure_identifier
from repro.storage.common_storage import CommonStorage, register_mirrored_namespace

#: The daemon's storage namespace: tenant ledger documents, queued
#: submissions and final submission records.  Mirrored, because queue
#: drains and usage updates rewrite documents in place.
SERVICE_NAMESPACE = register_mirrored_namespace("service")


class ServiceRateLimited(SchedulingError):
    """A submission was rejected by the tenant's rate limit.

    Carries ``retry_after`` — seconds (on the limiter's clock) until the
    tenant's token bucket holds a token again.
    """

    def __init__(self, tenant: str, retry_after: float) -> None:
        self.tenant = tenant
        self.retry_after = retry_after
        super().__init__(
            f"tenant {tenant!r} is rate limited; retry after "
            f"{retry_after:.3f}s"
        )


class TokenBucket:
    """A refilling token bucket with explicit retry-after reporting."""

    def __init__(self, capacity: float, refill_per_second: float) -> None:
        if capacity < 1:
            raise SchedulingError(
                f"token bucket capacity must be >= 1, got {capacity}"
            )
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._level = float(capacity)
        self._updated: Optional[float] = None

    def try_take(self, now: float) -> Tuple[bool, float]:
        """Take one token at time *now*: ``(granted, retry_after)``.

        ``retry_after`` is 0.0 on a grant, otherwise the seconds until one
        full token has refilled.  A bucket with a zero refill rate never
        refills — once the burst capacity is spent every request is
        rejected with an infinite retry-after.
        """
        if self._updated is not None and self.refill_per_second > 0:
            elapsed = max(0.0, now - self._updated)
            self._level = min(
                self.capacity, self._level + elapsed * self.refill_per_second
            )
        self._updated = now
        if self._level >= 1.0:
            self._level -= 1.0
            return True, 0.0
        if self.refill_per_second <= 0:
            return False, float("inf")
        return False, (1.0 - self._level) / self.refill_per_second


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's declared scheduling weight and rate limit."""

    name: str
    #: Fair-share weight: consecutive dispatches per round-robin turn.
    weight: int = 1
    #: Sustained submission rate (tokens/second); 0 means unlimited.
    rate_per_second: float = 0.0
    #: Token-bucket capacity: submissions accepted in one burst.
    burst: int = 1

    def __post_init__(self) -> None:
        ensure_identifier(self.name, "tenant name")
        if self.weight < 1:
            raise SchedulingError(
                f"tenant {self.name!r}: weight must be >= 1, got {self.weight}"
            )
        if self.rate_per_second < 0:
            raise SchedulingError(
                f"tenant {self.name!r}: rate must be >= 0, "
                f"got {self.rate_per_second}"
            )
        if self.burst < 1:
            raise SchedulingError(
                f"tenant {self.name!r}: burst must be >= 1, got {self.burst}"
            )

    def for_tenant(self, name: str) -> "TenantPolicy":
        """This policy re-targeted at another tenant (default templates)."""
        return replace(self, name=name)

    def bucket(self) -> Optional[TokenBucket]:
        """A fresh token bucket enforcing this policy (None = unlimited)."""
        if self.rate_per_second <= 0:
            return None
        return TokenBucket(self.burst, self.rate_per_second)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view; :meth:`from_dict` round-trips it."""
        return {
            "name": self.name,
            "weight": self.weight,
            "rate_per_second": self.rate_per_second,
            "burst": self.burst,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TenantPolicy":
        """Reconstruct a policy serialised by :meth:`to_dict`."""
        try:
            return cls(
                name=str(payload["name"]),
                weight=int(payload.get("weight", 1)),  # type: ignore[arg-type]
                rate_per_second=float(payload.get("rate_per_second", 0.0)),  # type: ignore[arg-type]
                burst=int(payload.get("burst", 1)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SchedulingError(
                f"invalid tenant policy document: {error}"
            ) from error


@dataclass
class TenantUsage:
    """Accumulated cost accounting for one tenant."""

    submissions: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Submissions rejected by the rate limiter (never queued).
    rejected: int = 0
    #: Matrix cells executed on the tenant's behalf.
    cells: int = 0
    #: Simulated build/test seconds consumed across campaign workers.
    build_seconds: float = 0.0
    #: Build-cache bytes added by the tenant's campaigns.
    cache_bytes: int = 0
    #: Cache hits the tenant's campaigns enjoyed.
    cache_hits: int = 0
    #: Hits on builds donated by *other* experiments (shared externals).
    shared_hits: int = 0
    #: Builds this tenant's campaigns donated to other tenants' warm starts.
    donated_builds: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view; :meth:`from_dict` round-trips it."""
        return {
            "submissions": self.submissions,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "cells": self.cells,
            "build_seconds": self.build_seconds,
            "cache_bytes": self.cache_bytes,
            "cache_hits": self.cache_hits,
            "shared_hits": self.shared_hits,
            "donated_builds": self.donated_builds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TenantUsage":
        """Reconstruct usage serialised by :meth:`to_dict`."""
        usage = cls()
        for name in usage.to_dict():
            if name in payload:
                current = getattr(usage, name)
                setattr(usage, name, type(current)(payload[name]))  # type: ignore[call-overload]
        return usage


@dataclass
class _TenantRecord:
    policy: TenantPolicy
    usage: TenantUsage = field(default_factory=TenantUsage)


class TenantLedger:
    """Per-tenant policies + usage, persisted in the ``service`` namespace.

    Documents live under ``tenant_<name>`` keys (policy + usage in one
    document, rewritten in place on every mutation) plus one
    ``experiment_owners`` document mapping each experiment to the tenant
    that first submitted it — the attribution base for donated builds.
    Construction replays every persisted document, so a ledger over a
    reloaded storage resumes exactly where the previous daemon stopped.
    """

    NAMESPACE = SERVICE_NAMESPACE
    KEY_PREFIX = "tenant_"
    OWNERS_KEY = "experiment_owners"

    def __init__(self, storage: CommonStorage) -> None:
        self.storage = storage
        self._namespace = storage.create_namespace(self.NAMESPACE)
        self._records: Dict[str, _TenantRecord] = {}
        self._owners: Dict[str, str] = {}
        for key in self._namespace.keys(prefix=self.KEY_PREFIX):
            document = self._namespace.get(key)
            policy = TenantPolicy.from_dict(document["policy"])  # type: ignore[index]
            usage = TenantUsage.from_dict(document["usage"])  # type: ignore[index]
            self._records[policy.name] = _TenantRecord(policy, usage)
        if self._namespace.exists(self.OWNERS_KEY):
            self._owners = {
                str(experiment): str(tenant)
                for experiment, tenant in self._namespace.get(  # type: ignore[union-attr]
                    self.OWNERS_KEY
                ).items()
            }

    # -- registration ----------------------------------------------------------
    def register(self, policy: TenantPolicy) -> TenantPolicy:
        """Register or update a tenant; existing usage is preserved."""
        record = self._records.get(policy.name)
        if record is None:
            self._records[policy.name] = _TenantRecord(policy)
        else:
            record.policy = policy
        self._persist(policy.name)
        return policy

    def knows(self, tenant: str) -> bool:
        """True when *tenant* is registered."""
        return tenant in self._records

    def policy(self, tenant: str) -> TenantPolicy:
        """The tenant's policy (raises on unknown tenants)."""
        try:
            return self._records[tenant].policy
        except KeyError:
            raise SchedulingError(
                f"unknown tenant {tenant!r}; register a TenantPolicy first"
            ) from None

    def usage(self, tenant: str) -> TenantUsage:
        """The tenant's accumulated usage (raises on unknown tenants)."""
        self.policy(tenant)
        return self._records[tenant].usage

    def tenants(self) -> List[str]:
        """Registered tenant names, sorted."""
        return sorted(self._records)

    def weights(self) -> Dict[str, int]:
        """Fair-share weights for the submission queue."""
        return {
            name: record.policy.weight
            for name, record in self._records.items()
        }

    # -- accounting (every mutation rewrites the tenant's document) ------------
    def record_rejected(self, tenant: str) -> None:
        """Count a rate-limited rejection."""
        self.usage(tenant).rejected += 1
        self._persist(tenant)

    def record_queued(self, tenant: str) -> None:
        """Count an accepted submission."""
        self.usage(tenant).submissions += 1
        self._persist(tenant)

    def record_cancelled(self, tenant: str) -> None:
        """Count a cancellation of a queued submission."""
        self.usage(tenant).cancelled += 1
        self._persist(tenant)

    def record_failed(self, tenant: str) -> None:
        """Count a dispatched submission that raised."""
        self.usage(tenant).failed += 1
        self._persist(tenant)

    def record_completed(
        self,
        tenant: str,
        *,
        cells: int,
        build_seconds: float,
        cache_bytes: int,
        cache_hits: int,
        shared_hits: int,
        experiments: Optional[List[str]] = None,
    ) -> None:
        """Bill one completed campaign to *tenant*.

        *experiments* claims first-submitter ownership of each named
        experiment (used later to attribute donated builds).
        """
        usage = self.usage(tenant)
        usage.completed += 1
        usage.cells += cells
        usage.build_seconds += build_seconds
        usage.cache_bytes += cache_bytes
        usage.cache_hits += cache_hits
        usage.shared_hits += shared_hits
        self._persist(tenant)
        for experiment in experiments or []:
            self.claim_experiment(tenant, experiment)

    def claim_experiment(self, tenant: str, experiment: str) -> str:
        """Record first-submitter ownership of *experiment*; returns owner."""
        owner = self._owners.setdefault(experiment, tenant)
        self._namespace.put(self.OWNERS_KEY, dict(sorted(self._owners.items())))
        return owner

    def credit_donation(self, experiment: str, builds: int) -> Optional[str]:
        """Credit *builds* donated by *experiment* to its owning tenant.

        Returns the credited tenant, or ``None`` when the donor experiment
        has no recorded owner (e.g. warm-start entries inherited from a
        pre-service cache).
        """
        if builds <= 0:
            return None
        owner = self._owners.get(experiment)
        if owner is None or owner not in self._records:
            return None
        self.usage(owner).donated_builds += builds
        self._persist(owner)
        return owner

    def total_cells(self) -> int:
        """Cells executed across all tenants (ledger consistency checks)."""
        return sum(record.usage.cells for record in self._records.values())

    def _persist(self, tenant: str) -> None:
        record = self._records[tenant]
        self._namespace.put(
            f"{self.KEY_PREFIX}{tenant}",
            {"policy": record.policy.to_dict(), "usage": record.usage.to_dict()},
        )


#: Default clock for the rate limiter: monotonic, never wall-clock.
def monotonic_clock() -> float:
    """The daemon's default rate-limiter clock (``time.monotonic``)."""
    return time.monotonic()


__all__ = [
    "SERVICE_NAMESPACE",
    "ServiceRateLimited",
    "TokenBucket",
    "TenantPolicy",
    "TenantUsage",
    "TenantLedger",
    "monotonic_clock",
]
