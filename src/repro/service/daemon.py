"""The validation-as-a-service daemon: queue in, campaigns out.

:class:`ValidationService` is the long-running front door of an
installation: many tenants submit :class:`~repro.scheduler.spec.CampaignSpec`
documents concurrently, the daemon queues them under fair-share scheduling
(:mod:`repro.service.queue`), enforces per-tenant token-bucket rate limits
and bills usage (:mod:`repro.service.tenants`), and dispatches **one
campaign at a time** through the one sanctioned execution entrypoint,
:meth:`SPSystem.submit`.  Serialised dispatch is a feature, not a
limitation: it is what keeps a hundred interleaved multi-tenant campaigns
byte-identical to a serial replay of the same specs — concurrency lives at
the queue, determinism lives at the executor.

Durability: accepted submissions are persisted as ``queued_<id>``
documents in the mirrored ``service`` namespace the moment they are
accepted, and rewritten as ``submission_<id>`` records when they finish.
A daemon constructed over a reloaded storage replays the queued documents
(and the tenant ledger) and resumes exactly where its predecessor stopped
— a crash between acceptance and dispatch loses nothing.

Telemetry: every accepted/started/cancelled submission and every rate
limiting decision is a lifecycle event on the system's plugin bus, and
:meth:`beat` publishes full service snapshots as ``heartbeat`` events plus
a live dashboard page.  The bus is not thread-safe, so the daemon holds
its own lock around *every* emission — including the campaign's own
events, by executing :meth:`SPSystem.submit` under the lock.

This module is deliberately execution-free: it never constructs an
execution backend or a campaign scheduler (the service-purity audit in
``scripts/ci.sh`` enforces that), so every queued campaign flows through
exactly the same code path as a directly-submitted one.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional

from repro._common import ReproError, SchedulingError
from repro.core.spsystem import SPSystem
from repro.scheduler.spec import CampaignSpec
from repro.scheduler.lifecycle import (
    EVENT_HEARTBEAT,
    EVENT_SUBMISSION_CANCELLED,
    EVENT_SUBMISSION_QUEUED,
    EVENT_SUBMISSION_STARTED,
    EVENT_TENANT_THROTTLED,
)
from repro.service.queue import (
    STATUS_CANCELLED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_RUNNING,
    Submission,
    SubmissionQueue,
)
from repro.service.tenants import (
    SERVICE_NAMESPACE,
    ServiceRateLimited,
    TenantLedger,
    TenantPolicy,
    TokenBucket,
    monotonic_clock,
)
from repro.service.telemetry import (
    HeartbeatWorker,
    snapshot_rows,
    submission_rows,
    tenant_rows,
)
from repro.storage.common_storage import CommonStorage


#: Tenants that submit without a registered policy get this template
#: (re-targeted at their name): weight 1, no rate limit.
DEFAULT_POLICY = TenantPolicy(name="default", weight=1, rate_per_second=0.0)


class ValidationService:
    """A multi-tenant submission daemon over one :class:`SPSystem`."""

    QUEUED_PREFIX = "queued_"
    RECORD_PREFIX = "submission_"
    WORKER_STATUS_KEY = "heartbeat_worker"

    def __init__(
        self,
        system: SPSystem,
        tenants: Iterable[TenantPolicy] = (),
        clock: Optional[Callable[[], float]] = None,
        default_policy: Optional[TenantPolicy] = DEFAULT_POLICY,
        heartbeat_every: int = 1,
        heartbeat_interval: float = 1.0,
        dashboard: bool = True,
        warm_start: bool = True,
    ) -> None:
        self.system = system
        self.clock = clock or monotonic_clock
        self.default_policy = default_policy
        self.heartbeat_every = heartbeat_every
        self.dashboard = dashboard
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._namespace = system.storage.create_namespace(SERVICE_NAMESPACE)
        self.ledger = TenantLedger(system.storage)
        for policy in tenants:
            self.ledger.register(policy)
        self.queue = SubmissionQueue()
        self._buckets: Dict[str, Optional[TokenBucket]] = {}
        self._submissions: Dict[str, Submission] = {}
        #: Enqueue clock times for still-queued submissions, so dispatch can
        #: report the queue wait -> dispatch latency per tenant.
        self._enqueued_at: Dict[str, float] = {}
        self._counter = 0
        self._running: Optional[Submission] = None
        self._dispatched = 0
        self._beats = 0
        self._utilisation_sum = 0.0
        self._utilisation_count = 0
        #: Dispatch order (submission IDs) — the serial-replay recipe that
        #: reproduces this daemon's output byte-for-byte.
        self.dispatch_order: List[str] = []
        self.heartbeat = HeartbeatWorker(self, interval=heartbeat_interval)
        if warm_start:
            # Baseline the shared cache before any accounting delta is
            # taken: a mid-campaign warm-start probe swapping the cache
            # underneath the ledger would mis-bill inherited entries.
            system.restore_build_cache(missing_ok=True)
        self._resume_persisted()

    # -- durability ------------------------------------------------------------
    def _resume_persisted(self) -> None:
        """Replay persisted queue + records left by a previous daemon."""
        for key in self._namespace.keys(prefix=self.RECORD_PREFIX):
            submission = Submission.from_dict(self._namespace.get(key))  # type: ignore[arg-type]
            self._submissions[submission.submission_id] = submission
            self._counter = max(self._counter, submission.sequence)
        queued = [
            Submission.from_dict(self._namespace.get(key))  # type: ignore[arg-type]
            for key in self._namespace.keys(prefix=self.QUEUED_PREFIX)
        ]
        for submission in sorted(queued, key=lambda item: item.sequence):
            submission._service = self
            self._counter = max(self._counter, submission.sequence)
            self._submissions[submission.submission_id] = submission
            self._ensure_tenant(submission.tenant)
            self.queue.enqueue(submission)

    def _persist_queued(self, submission: Submission) -> None:
        self._namespace.put(
            f"{self.QUEUED_PREFIX}{submission.submission_id}",
            submission.to_dict(),
        )

    def _retire_queued(self, submission: Submission) -> None:
        key = f"{self.QUEUED_PREFIX}{submission.submission_id}"
        if self._namespace.exists(key):
            self._namespace.delete(key)
        self._namespace.put(
            f"{self.RECORD_PREFIX}{submission.submission_id}",
            submission.to_dict(),
        )

    # -- tenants ---------------------------------------------------------------
    def register_tenant(self, policy: TenantPolicy) -> TenantPolicy:
        """Register (or update) a tenant's policy; resets its rate bucket."""
        with self._lock:
            registered = self.ledger.register(policy)
            self._buckets[policy.name] = policy.bucket()
            return registered

    def _ensure_tenant(self, tenant: str) -> TenantPolicy:
        if not self.ledger.knows(tenant):
            if self.default_policy is None:
                raise SchedulingError(
                    f"unknown tenant {tenant!r}; register a TenantPolicy first"
                )
            self.register_tenant(self.default_policy.for_tenant(tenant))
        if tenant not in self._buckets:
            self._buckets[tenant] = self.ledger.policy(tenant).bucket()
        return self.ledger.policy(tenant)

    # -- intake ----------------------------------------------------------------
    def submit(
        self, tenant: str, spec: CampaignSpec, priority: str = "normal"
    ) -> Submission:
        """Accept one campaign submission from *tenant* (or rate-limit it).

        Thread-safe.  On acceptance the submission is queued, persisted and
        announced as a ``submission_queued`` event; on rejection a
        ``tenant_throttled`` event fires and :class:`ServiceRateLimited`
        (carrying ``retry_after``) is raised.
        """
        with self._lock:
            self._ensure_tenant(tenant)
            bucket = self._buckets.get(tenant)
            if bucket is not None:
                granted, retry_after = bucket.try_take(self.clock())
                if not granted:
                    self.ledger.record_rejected(tenant)
                    self.system.lifecycle.emit(
                        EVENT_TENANT_THROTTLED,
                        payload={
                            "tenant": tenant,
                            "retry_after_seconds": (
                                -1.0
                                if retry_after == float("inf")
                                else round(retry_after, 6)
                            ),
                            "queue_depth": self.queue.depth(),
                        },
                    )
                    raise ServiceRateLimited(tenant, retry_after)
            self._counter += 1
            submission = Submission(
                submission_id=f"sub-{self._counter:06d}",
                tenant=tenant,
                spec=spec,
                priority=priority,
                sequence=self._counter,
                _service=self,
            )
            self._submissions[submission.submission_id] = submission
            self.queue.enqueue(submission)
            self._enqueued_at[submission.submission_id] = self.clock()
            self._persist_queued(submission)
            self.ledger.record_queued(tenant)
            self.system.lifecycle.emit(
                EVENT_SUBMISSION_QUEUED,
                payload={
                    "submission": submission.submission_id,
                    "tenant": tenant,
                    "priority": priority,
                    "queue_depth": self.queue.depth(),
                },
            )
            return submission

    def cancel(self, submission_id: str) -> Submission:
        """Cancel a still-queued submission (raises once it dispatched)."""
        with self._lock:
            submission = self.queue.cancel(submission_id)
            self._enqueued_at.pop(submission_id, None)
            submission.status = STATUS_CANCELLED
            self._retire_queued(submission)
            self.ledger.record_cancelled(submission.tenant)
            self.system.lifecycle.emit(
                EVENT_SUBMISSION_CANCELLED,
                payload={
                    "submission": submission.submission_id,
                    "tenant": submission.tenant,
                    "queue_depth": self.queue.depth(),
                },
            )
            return submission

    def submission(self, submission_id: str) -> Submission:
        """Look up a submission by ID (queued, running or finished)."""
        with self._lock:
            try:
                return self._submissions[submission_id]
            except KeyError:
                raise SchedulingError(
                    f"unknown submission {submission_id!r}"
                ) from None

    def submissions(self) -> List[Submission]:
        """Every known submission, in arrival order."""
        with self._lock:
            return sorted(
                self._submissions.values(), key=lambda item: item.sequence
            )

    # -- dispatch --------------------------------------------------------------
    def run_next(self) -> Optional[Submission]:
        """Dispatch the next fair-share submission; ``None`` on empty queue.

        The campaign executes under the service lock (the lifecycle bus is
        not thread-safe), so concurrent ``submit`` calls block for the
        duration of one campaign, then interleave between campaigns.
        """
        with self._lock:
            submission = self.queue.next_submission(self.ledger.weights())
            if submission is None:
                return None
            submission.status = STATUS_RUNNING
            self._running = submission
            self.dispatch_order.append(submission.submission_id)
            telemetry = self.system.telemetry
            enqueued_at = self._enqueued_at.pop(submission.submission_id, None)
            if enqueued_at is not None:
                telemetry.metrics.observe(
                    "service_queue_wait_seconds",
                    max(0.0, self.clock() - enqueued_at),
                    tenant=submission.tenant,
                )
            self.system.lifecycle.emit(
                EVENT_SUBMISSION_STARTED,
                payload={
                    "submission": submission.submission_id,
                    "tenant": submission.tenant,
                    "priority": submission.priority,
                    "queue_depth": self.queue.depth(),
                },
            )
            try:
                with telemetry.tracer.span(
                    "service_dispatch",
                    category="service",
                    submission=submission.submission_id,
                    tenant=submission.tenant,
                ):
                    self._execute(submission)
            finally:
                self._running = None
                self._dispatched += 1
                self._retire_queued(submission)
                if (
                    self.heartbeat_every > 0
                    and self._dispatched % self.heartbeat_every == 0
                ):
                    self.beat(source="dispatch")
            return submission

    def _execute(self, submission: Submission) -> None:
        cache = self.system.effective_build_cache()
        bytes_before = cache.total_size_bytes()
        hits_before = cache.statistics.hits
        shared_before = cache.statistics.shared_hits
        donated_before = dict(cache.statistics.donated_by_experiment)
        try:
            handle = self.system.submit(submission.spec)
            campaign = handle.result()
        except ReproError as error:
            submission.status = STATUS_FAILED
            submission.error = str(error)
            self.ledger.record_failed(submission.tenant)
            return
        submission.status = STATUS_COMPLETED
        submission.campaign_id = handle.campaign_id
        submission.cells = len(campaign.cells)
        # Re-read the cache: the warm-start probe inside SPSystem.submit
        # may have swapped the instance on the first dispatch.
        cache = self.system.effective_build_cache()
        self._utilisation_sum += campaign.schedule.utilisation
        self._utilisation_count += 1
        experiments = sorted({cell.experiment for cell in campaign.cells})
        self.ledger.record_completed(
            submission.tenant,
            cells=len(campaign.cells),
            build_seconds=sum(
                campaign.schedule.busy_seconds_per_worker.values()
            ),
            cache_bytes=max(0, cache.total_size_bytes() - bytes_before),
            cache_hits=max(0, cache.statistics.hits - hits_before),
            shared_hits=max(0, cache.statistics.shared_hits - shared_before),
            experiments=experiments,
        )
        for experiment, count in sorted(
            cache.statistics.donated_by_experiment.items()
        ):
            self.ledger.credit_donation(
                experiment, count - donated_before.get(experiment, 0)
            )

    def run_pending(
        self, max_submissions: Optional[int] = None
    ) -> List[Submission]:
        """Drain the queue (up to *max_submissions*); returns what ran."""
        processed: List[Submission] = []
        while max_submissions is None or len(processed) < max_submissions:
            submission = self.run_next()
            if submission is None:
                break
            processed.append(submission)
        return processed

    def serve_forever(self, poll_seconds: float = 0.1) -> int:
        """Serve until :meth:`stop` is called; returns submissions run.

        Supervises the heartbeat worker on every idle poll, so a dead
        telemetry thread restarts without operator action.
        """
        served = 0
        self._stop.clear()
        while not self._stop.is_set():
            submission = self.run_next()
            if submission is not None:
                served += 1
                continue
            self.heartbeat.supervise()
            self.queue.wait_for_work(timeout=poll_seconds)
        return served

    def stop(self) -> None:
        """Ask :meth:`serve_forever` to exit after the current campaign."""
        self._stop.set()

    # -- telemetry -------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The full telemetry snapshot published by every heartbeat."""
        with self._lock:
            cache = self.system.effective_build_cache()
            running = self._running
            return {
                "queue_depth": self.queue.depth(),
                "backlog": self.queue.backlog(),
                "running": running.submission_id if running else "",
                "tenants": len(self.ledger.tenants()),
                "dispatched": self._dispatched,
                "completed": sum(
                    1
                    for item in self._submissions.values()
                    if item.status == STATUS_COMPLETED
                ),
                "failed": sum(
                    1
                    for item in self._submissions.values()
                    if item.status == STATUS_FAILED
                ),
                "cancelled": sum(
                    1
                    for item in self._submissions.values()
                    if item.status == STATUS_CANCELLED
                ),
                "beats": self._beats,
                "worker_utilisation": (
                    self._utilisation_sum / self._utilisation_count
                    if self._utilisation_count
                    else 0.0
                ),
                "cache_entries": len(cache),
                "cache_hit_rate": cache.statistics.hit_rate,
                "cache_bytes": cache.total_size_bytes(),
            }

    def beat(self, source: str = "manual") -> Dict[str, object]:
        """Publish one heartbeat: lifecycle event + dashboard refresh."""
        with self._lock:
            snapshot = self.snapshot()
            snapshot["source"] = source
            self._beats += 1
            snapshot["beats"] = self._beats
            telemetry = self.system.telemetry
            if telemetry.enabled:
                # Fold the live metric series into the heartbeat payload so
                # a FileEventSink stream doubles as a coarse metrics scrape.
                snapshot["metrics"] = {
                    series: value
                    for _, series, value in telemetry.metrics.summary_rows()
                }
            self.system.lifecycle.emit(EVENT_HEARTBEAT, payload=snapshot)
            # Persist the worker's self-reported health alongside the queue
            # documents, so an offline `repro queue status` can show the
            # last beat failure of a daemon that is no longer running.
            self._namespace.put(self.WORKER_STATUS_KEY, self.heartbeat.status())
            if self.dashboard:
                self.publish_dashboard()
            return snapshot

    def publish_dashboard(self) -> str:
        """Render the live service page into the ``reports`` namespace."""
        from repro.reporting.webpages import StatusPageGenerator

        with self._lock:
            pages = StatusPageGenerator(self.system.storage)
            telemetry = self.system.telemetry
            return pages.service_page(
                snapshot=snapshot_rows(self.snapshot()),
                tenants=tenant_rows(self.ledger, backlog=self.queue.backlog()),
                submissions=submission_rows(self.submissions()),
                worker=self.heartbeat.status(),
                metrics=(
                    telemetry.metrics.summary_rows()
                    if telemetry.enabled
                    else None
                ),
            )

    def status_rows(self) -> List[Dict[str, object]]:
        """``metric``/``value`` rows for ``repro queue status``."""
        return snapshot_rows(self.snapshot())


# -- storage-level queue inspection (no live system required) ------------------
def load_submissions(storage: CommonStorage) -> List[Submission]:
    """Every persisted submission (queued + finished), in arrival order.

    Reads the ``service`` namespace only — ``repro queue status`` inspects
    a daemon's storage without provisioning a system.
    """
    if SERVICE_NAMESPACE not in storage.namespaces():
        return []
    submissions = []
    for prefix in (ValidationService.QUEUED_PREFIX, ValidationService.RECORD_PREFIX):
        for key in storage.keys(SERVICE_NAMESPACE, prefix=prefix):
            submissions.append(
                Submission.from_dict(storage.get(SERVICE_NAMESPACE, key))  # type: ignore[arg-type]
            )
    return sorted(submissions, key=lambda item: item.sequence)


def cancel_persisted(storage: CommonStorage, submission_id: str) -> Submission:
    """Cancel a persisted *queued* submission directly in storage.

    The offline counterpart of :meth:`ValidationService.cancel` for
    ``repro queue cancel``: flips the queued document into a cancelled
    record so the next daemon never dispatches it.  (No lifecycle event —
    there is no live bus; the record itself is the audit trail.)
    """
    key = f"{ValidationService.QUEUED_PREFIX}{submission_id}"
    if (
        SERVICE_NAMESPACE not in storage.namespaces()
        or not storage.exists(SERVICE_NAMESPACE, key)
    ):
        raise SchedulingError(
            f"submission {submission_id!r} is not queued in this storage"
        )
    namespace = storage.namespace(SERVICE_NAMESPACE)
    submission = Submission.from_dict(namespace.get(key))  # type: ignore[arg-type]
    submission.status = STATUS_CANCELLED
    namespace.delete(key)
    namespace.put(
        f"{ValidationService.RECORD_PREFIX}{submission_id}",
        submission.to_dict(),
    )
    ledger = TenantLedger(storage)
    if ledger.knows(submission.tenant):
        ledger.record_cancelled(submission.tenant)
    return submission


__all__ = [
    "DEFAULT_POLICY",
    "ValidationService",
    "load_submissions",
    "cancel_persisted",
]
