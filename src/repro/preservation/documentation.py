"""Level-1 preservation: the documentation archive.

Table 1 defines level 1 as "provide additional documentation" with the use
case "publication related info search".  The paper stresses that "just as
important are the various types of documentation, covering all facets of an
experiment".  This module provides that substrate: a searchable archive of
documentation items (publications, theses, internal notes, meeting minutes,
manuals, metadata descriptions) stored on the common sp-system storage, with
the completeness checks an experiment needs before declaring its level-1
obligation fulfilled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro._common import ValidationError, ensure_identifier
from repro.storage.common_storage import CommonStorage


class DocumentCategory(enum.Enum):
    """Categories of experiment documentation ("all facets of an experiment")."""

    PUBLICATION = "publication"
    THESIS = "thesis"
    INTERNAL_NOTE = "internal-note"
    MEETING_MINUTES = "meeting-minutes"
    MANUAL = "manual"
    DETECTOR_DESCRIPTION = "detector-description"
    SOFTWARE_GUIDE = "software-guide"
    DATA_FORMAT_DESCRIPTION = "data-format-description"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Categories an experiment must cover to satisfy a level-1 programme.
LEVEL1_REQUIRED_CATEGORIES: Tuple[DocumentCategory, ...] = (
    DocumentCategory.PUBLICATION,
    DocumentCategory.MANUAL,
    DocumentCategory.DETECTOR_DESCRIPTION,
    DocumentCategory.SOFTWARE_GUIDE,
    DocumentCategory.DATA_FORMAT_DESCRIPTION,
)


@dataclass(frozen=True)
class DocumentationItem:
    """One archived document."""

    identifier: str
    experiment: str
    category: DocumentCategory
    title: str
    year: int
    authors: Tuple[str, ...] = ()
    keywords: Tuple[str, ...] = ()
    abstract: str = ""

    def __post_init__(self) -> None:
        ensure_identifier(self.identifier, "document identifier")
        ensure_identifier(self.experiment, "experiment name")
        if not self.title:
            raise ValidationError("a document needs a title")
        if self.year < 1950 or self.year > 2100:
            raise ValidationError(f"implausible document year {self.year}")

    def matches(self, query: str) -> bool:
        """Case-insensitive search over title, keywords, authors and abstract."""
        needle = query.lower()
        haystacks = [self.title, self.abstract]
        haystacks.extend(self.keywords)
        haystacks.extend(self.authors)
        return any(needle in haystack.lower() for haystack in haystacks)

    def to_document(self) -> Dict[str, object]:
        """Serialise for the common storage."""
        return {
            "identifier": self.identifier,
            "experiment": self.experiment,
            "category": self.category.value,
            "title": self.title,
            "year": self.year,
            "authors": list(self.authors),
            "keywords": list(self.keywords),
            "abstract": self.abstract,
        }

    @classmethod
    def from_document(cls, payload: Dict[str, object]) -> "DocumentationItem":
        """Reconstruct an item stored by :meth:`to_document`."""
        return cls(
            identifier=str(payload["identifier"]),
            experiment=str(payload["experiment"]),
            category=DocumentCategory(payload["category"]),
            title=str(payload["title"]),
            year=int(payload["year"]),
            authors=tuple(payload.get("authors", [])),
            keywords=tuple(payload.get("keywords", [])),
            abstract=str(payload.get("abstract", "")),
        )


@dataclass
class Level1Report:
    """Completeness assessment of an experiment's documentation archive."""

    experiment: str
    n_documents: int
    documents_per_category: Dict[str, int]
    missing_categories: List[str]

    @property
    def complete(self) -> bool:
        """True when every required category has at least one document."""
        return not self.missing_categories


class DocumentationArchive:
    """Searchable archive of experiment documentation (level 1)."""

    NAMESPACE = "documentation"

    def __init__(self, storage: Optional[CommonStorage] = None) -> None:
        self.storage = storage if storage is not None else CommonStorage()
        self.storage.create_namespace(self.NAMESPACE)
        self._items: Dict[str, DocumentationItem] = {}
        for key in self.storage.keys(self.NAMESPACE):
            payload = self.storage.get(self.NAMESPACE, key)
            item = DocumentationItem.from_document(payload)  # type: ignore[arg-type]
            self._items[item.identifier] = item

    def archive(self, item: DocumentationItem) -> None:
        """Add a document to the archive (duplicate identifiers are rejected)."""
        if item.identifier in self._items:
            raise ValidationError(f"document {item.identifier!r} is already archived")
        self._items[item.identifier] = item
        self.storage.put(self.NAMESPACE, item.identifier, item.to_document())

    def get(self, identifier: str) -> DocumentationItem:
        """Return the archived document with the given identifier."""
        try:
            return self._items[identifier]
        except KeyError:
            raise ValidationError(f"no archived document {identifier!r}") from None

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._items

    def for_experiment(self, experiment: str) -> List[DocumentationItem]:
        """All documents of one experiment, sorted by year then identifier."""
        return sorted(
            (item for item in self._items.values() if item.experiment == experiment),
            key=lambda item: (item.year, item.identifier),
        )

    def by_category(
        self, experiment: str, category: DocumentCategory
    ) -> List[DocumentationItem]:
        """All documents of one experiment in one category."""
        return [
            item for item in self.for_experiment(experiment) if item.category is category
        ]

    def search(self, query: str, experiment: Optional[str] = None) -> List[DocumentationItem]:
        """The level-1 use case: publication related info search."""
        if not query:
            raise ValidationError("search query must be non-empty")
        candidates = (
            self.for_experiment(experiment)
            if experiment is not None
            else sorted(self._items.values(), key=lambda item: item.identifier)
        )
        return [item for item in candidates if item.matches(query)]

    def level1_report(self, experiment: str) -> Level1Report:
        """Assess whether the experiment's documentation covers all facets."""
        items = self.for_experiment(experiment)
        per_category: Dict[str, int] = {}
        for item in items:
            per_category[item.category.value] = per_category.get(item.category.value, 0) + 1
        missing = [
            category.value
            for category in LEVEL1_REQUIRED_CATEGORIES
            if category.value not in per_category
        ]
        return Level1Report(
            experiment=experiment,
            n_documents=len(items),
            documents_per_category=per_category,
            missing_categories=missing,
        )


def default_hera_documentation() -> List[DocumentationItem]:
    """A small synthetic documentation corpus for the HERA experiments."""
    items: List[DocumentationItem] = []
    corpus = {
        "H1": [
            (DocumentCategory.PUBLICATION, "Inclusive deep inelastic scattering at high Q2", 2012,
             ("nc_dis", "cross-section")),
            (DocumentCategory.PUBLICATION, "Measurement of charm production in DIS", 2011,
             ("heavy_flavour",)),
            (DocumentCategory.MANUAL, "H1 analysis software user guide", 2010, ("software",)),
            (DocumentCategory.DETECTOR_DESCRIPTION, "The H1 detector at HERA", 1997, ("detector",)),
            (DocumentCategory.SOFTWARE_GUIDE, "H1 reconstruction software overview", 2008, ("software",)),
            (DocumentCategory.DATA_FORMAT_DESCRIPTION, "H1 DST and microDST formats", 2009, ("dst",)),
            (DocumentCategory.THESIS, "Measurement of the longitudinal structure function", 2010, ("structure-function",)),
            (DocumentCategory.INTERNAL_NOTE, "Calibration of the LAr calorimeter", 2006, ("calibration",)),
        ],
        "ZEUS": [
            (DocumentCategory.PUBLICATION, "Inclusive jet cross sections in photoproduction", 2012,
             ("photoproduction", "jets")),
            (DocumentCategory.MANUAL, "ZEUS offline software manual", 2009, ("software",)),
            (DocumentCategory.DETECTOR_DESCRIPTION, "The ZEUS detector status report", 1993, ("detector",)),
            (DocumentCategory.SOFTWARE_GUIDE, "ZEUS common ntuple guide", 2010, ("ntuple",)),
            (DocumentCategory.DATA_FORMAT_DESCRIPTION, "ZEUS MDST format definition", 2008, ("mdst",)),
        ],
        "HERMES": [
            (DocumentCategory.PUBLICATION, "Quark helicity distributions from semi-inclusive DIS", 2005,
             ("spin", "semi-inclusive")),
            (DocumentCategory.MANUAL, "HERMES analysis framework manual", 2007, ("software",)),
            (DocumentCategory.DETECTOR_DESCRIPTION, "The HERMES spectrometer", 1998, ("detector",)),
            (DocumentCategory.SOFTWARE_GUIDE, "HERMES productions and smearing guide", 2009, ("software",)),
            (DocumentCategory.DATA_FORMAT_DESCRIPTION, "HERMES microDST description", 2006, ("microdst",)),
        ],
    }
    for experiment, entries in corpus.items():
        for index, (category, title, year, keywords) in enumerate(entries):
            items.append(
                DocumentationItem(
                    identifier=f"{experiment.lower()}-doc-{index:03d}",
                    experiment=experiment,
                    category=category,
                    title=title,
                    year=year,
                    keywords=tuple(keywords),
                    authors=(f"{experiment} Collaboration",),
                    abstract=f"{title} ({experiment}, {year}).",
                )
            )
    return items


__all__ = [
    "DocumentCategory",
    "DocumentationItem",
    "DocumentationArchive",
    "Level1Report",
    "LEVEL1_REQUIRED_CATEGORIES",
    "default_hera_documentation",
]
