"""Level-2 preservation: simplified data formats for outreach and training.

Table 1 defines level 2 as "preserve the data in a simplified format" with the
use case "outreach, simple training analyses".  This module converts
analysis-level micro-DSTs into a self-describing simplified dataset (a small
schema of per-event columns in plain Python types), validates exported
datasets against their schema, and provides the kind of simple training
analysis (counting events in kinematic bins) the preserved format is meant to
enable without any experiment software.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._common import ValidationError
from repro.hepdata.dst import MicroDST
from repro.storage.common_storage import CommonStorage


#: Columns of the simplified outreach format: name, unit, description.
SIMPLIFIED_SCHEMA: Tuple[Tuple[str, str, str], ...] = (
    ("event_number", "", "sequential event number"),
    ("q2", "GeV^2", "negative four-momentum transfer squared"),
    ("x", "", "Bjorken scaling variable"),
    ("y", "", "inelasticity"),
    ("n_jets", "", "number of reconstructed jets"),
    ("charged_multiplicity", "", "number of charged particles"),
)


@dataclass
class SimplifiedDataset:
    """A level-2 simplified dataset: schema plus rows of plain Python values."""

    experiment: str
    name: str
    schema: Tuple[Tuple[str, str, str], ...]
    rows: List[Dict[str, float]] = field(default_factory=list)
    provenance: str = ""

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[float]:
        """Return one column as a plain list."""
        if name not in {entry[0] for entry in self.schema}:
            raise ValidationError(f"simplified dataset has no column {name!r}")
        return [row[name] for row in self.rows]

    def validate(self) -> List[str]:
        """Check every row against the schema; returns the list of problems."""
        problems: List[str] = []
        expected = [entry[0] for entry in self.schema]
        for index, row in enumerate(self.rows):
            missing = [name for name in expected if name not in row]
            extra = [name for name in row if name not in expected]
            if missing:
                problems.append(f"row {index}: missing columns {missing}")
            if extra:
                problems.append(f"row {index}: unexpected columns {extra}")
            for name, value in row.items():
                if not isinstance(value, (int, float)):
                    problems.append(f"row {index}: column {name!r} is not numeric")
        return problems

    def to_document(self) -> Dict[str, object]:
        """Serialise for the common storage (plain JSON types only)."""
        return {
            "experiment": self.experiment,
            "name": self.name,
            "schema": [list(entry) for entry in self.schema],
            "rows": [dict(row) for row in self.rows],
            "provenance": self.provenance,
        }

    @classmethod
    def from_document(cls, payload: Dict[str, object]) -> "SimplifiedDataset":
        """Reconstruct a dataset stored by :meth:`to_document`."""
        return cls(
            experiment=str(payload["experiment"]),
            name=str(payload["name"]),
            schema=tuple(tuple(entry) for entry in payload["schema"]),
            rows=[dict(row) for row in payload.get("rows", [])],
            provenance=str(payload.get("provenance", "")),
        )


class SimplifiedDatasetExporter:
    """Exports micro-DSTs into the simplified level-2 format."""

    NAMESPACE = "outreach"

    def __init__(self, storage: Optional[CommonStorage] = None) -> None:
        self.storage = storage if storage is not None else CommonStorage()
        self.storage.create_namespace(self.NAMESPACE)

    def export(
        self,
        experiment: str,
        name: str,
        micro_dst: MicroDST,
        provenance: str = "",
        max_events: Optional[int] = None,
    ) -> SimplifiedDataset:
        """Convert *micro_dst* into a simplified dataset and store it."""
        dataset = SimplifiedDataset(
            experiment=experiment,
            name=name,
            schema=SIMPLIFIED_SCHEMA,
            provenance=provenance,
        )
        limit = len(micro_dst) if max_events is None else min(max_events, len(micro_dst))
        columns = {entry[0]: micro_dst.column(entry[0]) for entry in SIMPLIFIED_SCHEMA}
        for index in range(limit):
            dataset.rows.append(
                {name: float(values[index]) for name, values in columns.items()}
            )
        problems = dataset.validate()
        if problems:
            raise ValidationError(
                "exported simplified dataset violates its schema: " + "; ".join(problems)
            )
        self.storage.put(
            self.NAMESPACE, f"{experiment}_{name}", dataset.to_document()
        )
        return dataset

    def load(self, experiment: str, name: str) -> SimplifiedDataset:
        """Load a previously exported dataset."""
        payload = self.storage.get(self.NAMESPACE, f"{experiment}_{name}")
        return SimplifiedDataset.from_document(payload)  # type: ignore[arg-type]

    def datasets_for(self, experiment: str) -> List[str]:
        """Names of the datasets exported for one experiment."""
        prefix = f"{experiment}_"
        return [
            key[len(prefix):]
            for key in self.storage.keys(self.NAMESPACE, prefix=prefix)
        ]


@dataclass
class TrainingAnalysisResult:
    """Result of the simple training analysis on a simplified dataset."""

    dataset_name: str
    n_events: int
    events_per_q2_bin: Dict[str, int]
    mean_multiplicity: float
    dis_fraction: float


def run_training_analysis(
    dataset: SimplifiedDataset, q2_bins: Sequence[float] = (4.0, 10.0, 100.0, 1000.0, 10000.0)
) -> TrainingAnalysisResult:
    """The level-2 use case: a simple counting analysis without any experiment code."""
    if list(q2_bins) != sorted(q2_bins) or len(q2_bins) < 2:
        raise ValidationError("q2_bins must be an increasing sequence of at least two edges")
    q2_values = dataset.column("q2")
    multiplicities = dataset.column("charged_multiplicity")
    events_per_bin: Dict[str, int] = {}
    for low, high in zip(q2_bins[:-1], q2_bins[1:]):
        label = f"[{low:g}, {high:g})"
        events_per_bin[label] = sum(1 for value in q2_values if low <= value < high)
    n_events = len(dataset)
    dis_events = sum(1 for value in q2_values if value >= 4.0)
    return TrainingAnalysisResult(
        dataset_name=dataset.name,
        n_events=n_events,
        events_per_q2_bin=events_per_bin,
        mean_multiplicity=(sum(multiplicities) / n_events) if n_events else 0.0,
        dis_fraction=(dis_events / n_events) if n_events else 0.0,
    )


__all__ = [
    "SIMPLIFIED_SCHEMA",
    "SimplifiedDataset",
    "SimplifiedDatasetExporter",
    "TrainingAnalysisResult",
    "run_training_analysis",
]
