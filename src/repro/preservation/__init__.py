"""Level-1 and level-2 preservation: documentation and simplified formats.

The technical validation framework (levels 3 and 4) is the core of the
reproduction; this package covers the complementary initiatives of Table 1 —
the documentation archive (level 1) and the simplified outreach data format
(level 2) — so that a full DPHEP preservation programme can be modelled end
to end.
"""

from repro.preservation.documentation import (
    DocumentCategory,
    DocumentationArchive,
    DocumentationItem,
    LEVEL1_REQUIRED_CATEGORIES,
    Level1Report,
    default_hera_documentation,
)
from repro.preservation.outreach import (
    SIMPLIFIED_SCHEMA,
    SimplifiedDataset,
    SimplifiedDatasetExporter,
    TrainingAnalysisResult,
    run_training_analysis,
)

__all__ = [
    "DocumentCategory",
    "DocumentationArchive",
    "DocumentationItem",
    "LEVEL1_REQUIRED_CATEGORIES",
    "Level1Report",
    "default_hera_documentation",
    "SIMPLIFIED_SCHEMA",
    "SimplifiedDataset",
    "SimplifiedDatasetExporter",
    "TrainingAnalysisResult",
    "run_training_analysis",
]
