"""Parameterised detector simulation.

The second step of the H1 analysis chains is detector simulation.  Instead of
a full GEANT transport, this module applies a parameterised detector response
to generated events: finite acceptance, reconstruction efficiency, momentum
and energy smearing.  The response depends on the :class:`NumericContext`, so
that rebuilding the "simulation software" in a different environment produces
slightly different (benign) or badly different (defective) detector-level
events — which is precisely the signal the validation framework looks for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._common import ValidationError
from repro.hepdata.event import Event, EventRecord, FourVector, Particle
from repro.hepdata.numerics import NumericContext, REFERENCE_CONTEXT


@dataclass(frozen=True)
class DetectorSettings:
    """Parameterisation of the detector response.

    Attributes
    ----------
    name:
        Detector name recorded in the provenance (e.g. ``"H1-detector"``).
    track_efficiency:
        Probability that a charged particle inside the acceptance is
        reconstructed as a track.
    momentum_resolution:
        Relative Gaussian smearing of charged particle momenta.
    energy_resolution_stochastic:
        Stochastic term of the calorimeter resolution, sigma(E)/E = a/sqrt(E).
    min_pt:
        Transverse momentum threshold of the tracker, in GeV.
    max_abs_eta:
        Pseudorapidity acceptance limit.
    """

    name: str = "generic-detector"
    track_efficiency: float = 0.96
    momentum_resolution: float = 0.02
    energy_resolution_stochastic: float = 0.11
    min_pt: float = 0.06
    max_abs_eta: float = 3.5

    def __post_init__(self) -> None:
        if not 0.0 < self.track_efficiency <= 1.0:
            raise ValidationError("track efficiency must be in (0, 1]")
        if self.momentum_resolution < 0 or self.energy_resolution_stochastic < 0:
            raise ValidationError("resolutions must be non-negative")
        if self.min_pt < 0:
            raise ValidationError("min_pt must be non-negative")


class DetectorSimulation:
    """Applies the parameterised detector response to an event record."""

    def __init__(
        self,
        settings: Optional[DetectorSettings] = None,
        numeric_context: Optional[NumericContext] = None,
    ) -> None:
        self.settings = settings or DetectorSettings()
        self.numeric_context = numeric_context or REFERENCE_CONTEXT

    def simulate(self, record: EventRecord, seed: int = 2) -> EventRecord:
        """Return a detector-level copy of *record*."""
        rng = np.random.default_rng(seed)
        simulated = EventRecord(provenance=list(record.provenance))
        simulated.add_provenance(f"detector-simulation:{self.settings.name}:seed={seed}")
        for event in record:
            simulated.append(self._simulate_event(event, rng))
        return simulated

    def _simulate_event(self, event: Event, rng: np.random.Generator) -> Event:
        """Apply acceptance, efficiency and smearing to one event."""
        detected: List[Particle] = []
        for index, particle in enumerate(event.particles):
            if not self._in_acceptance(particle):
                continue
            if particle.is_charged and rng.uniform() > self.settings.track_efficiency:
                continue
            detected.append(self._smear(particle, rng, f"{event.event_number}:{index}"))
        return Event(
            event_number=event.event_number,
            process=event.process,
            q_squared=event.q_squared,
            bjorken_x=event.bjorken_x,
            inelasticity=event.inelasticity,
            particles=detected,
            weight=event.weight,
        )

    def _in_acceptance(self, particle: Particle) -> bool:
        """Geometric and kinematic acceptance of the detector."""
        vector = particle.four_vector
        if vector.pt < self.settings.min_pt:
            return False
        # Convert polar angle to pseudorapidity for the acceptance cut.
        theta = vector.theta
        if theta <= 0.0 or theta >= math.pi:
            return False
        eta = -math.log(math.tan(theta / 2.0))
        return abs(eta) <= self.settings.max_abs_eta

    def _smear(
        self, particle: Particle, rng: np.random.Generator, tag: str
    ) -> Particle:
        """Smear the particle's four vector according to the detector resolution."""
        vector = particle.four_vector
        if particle.is_charged:
            scale = 1.0 + float(rng.normal(0.0, self.settings.momentum_resolution))
        else:
            energy = max(vector.energy, 0.1)
            sigma = self.settings.energy_resolution_stochastic / math.sqrt(energy)
            scale = 1.0 + float(rng.normal(0.0, sigma))
        scale = max(scale, 0.05)
        scale = self.numeric_context.perturb_scalar(scale, f"smear:{tag}")
        smeared = FourVector(
            energy=vector.energy * scale,
            px=vector.px * scale,
            py=vector.py * scale,
            pz=vector.pz * scale,
        )
        return Particle(
            pdg_code=particle.pdg_code,
            four_vector=smeared,
            charge=particle.charge,
            status=particle.status,
        )


def detector_for_experiment(experiment_name: str) -> DetectorSettings:
    """Return the detector parameterisation used by a given HERA experiment."""
    presets = {
        "H1": DetectorSettings(
            name="H1-detector",
            track_efficiency=0.97,
            momentum_resolution=0.018,
            energy_resolution_stochastic=0.11,
            min_pt=0.07,
            max_abs_eta=3.5,
        ),
        "ZEUS": DetectorSettings(
            name="ZEUS-detector",
            track_efficiency=0.96,
            momentum_resolution=0.020,
            energy_resolution_stochastic=0.18,
            min_pt=0.08,
            max_abs_eta=3.2,
        ),
        "HERMES": DetectorSettings(
            name="HERMES-spectrometer",
            track_efficiency=0.94,
            momentum_resolution=0.015,
            energy_resolution_stochastic=0.05,
            min_pt=0.06,
            max_abs_eta=3.0,
        ),
    }
    return presets.get(experiment_name, DetectorSettings())


__all__ = ["DetectorSettings", "DetectorSimulation", "detector_for_experiment"]
