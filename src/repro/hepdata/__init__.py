"""Synthetic HEP data substrate.

Implements the full toy analysis chain the experiment validation tests run:
Monte Carlo generation, detector simulation, reconstruction, multi-level file
production (DST and micro-DST) and a physics analysis, plus the histogramming
and statistical comparison machinery the validation framework uses to decide
whether two runs agree.
"""

from repro.hepdata.analysis import (
    AnalysisResult,
    CrossSectionPoint,
    PhysicsAnalysis,
    SelectionCuts,
    compare_cross_sections,
)
from repro.hepdata.dst import (
    DSTFile,
    DSTProducer,
    DSTRecord,
    MicroDST,
    MicroDSTProducer,
)
from repro.hepdata.event import Event, EventRecord, FourVector, Particle
from repro.hepdata.generator import (
    GeneratorSettings,
    MonteCarloGenerator,
    default_processes,
)
from repro.hepdata.histogram import (
    ComparisonResult,
    Histogram1D,
    HistogramSet,
    chi2_comparison,
    ks_comparison,
)
from repro.hepdata.numerics import (
    NumericContext,
    REFERENCE_CONTEXT,
    context_for_environment,
)
from repro.hepdata.reconstruction import (
    EventReconstruction,
    Jet,
    ReconstructedEvent,
    ReconstructedKinematics,
)
from repro.hepdata.simulation import (
    DetectorSettings,
    DetectorSimulation,
    detector_for_experiment,
)

__all__ = [
    "AnalysisResult",
    "CrossSectionPoint",
    "PhysicsAnalysis",
    "SelectionCuts",
    "compare_cross_sections",
    "DSTFile",
    "DSTProducer",
    "DSTRecord",
    "MicroDST",
    "MicroDSTProducer",
    "Event",
    "EventRecord",
    "FourVector",
    "Particle",
    "GeneratorSettings",
    "MonteCarloGenerator",
    "default_processes",
    "ComparisonResult",
    "Histogram1D",
    "HistogramSet",
    "chi2_comparison",
    "ks_comparison",
    "NumericContext",
    "REFERENCE_CONTEXT",
    "context_for_environment",
    "EventReconstruction",
    "Jet",
    "ReconstructedEvent",
    "ReconstructedKinematics",
    "DetectorSettings",
    "DetectorSimulation",
    "detector_for_experiment",
]
