"""Histogramming and statistical comparison of validation outputs.

Many of the sp-system validation outputs are histograms ("This file may be a
simple yes/no, a text file, a histogram, a root file...").  The validation
framework needs to decide whether a histogram produced in a new environment is
statistically compatible with the one from the last successful run.  This
module provides a small 1-D histogram class plus the chi-square and
Kolmogorov–Smirnov compatibility tests used for that decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro._common import ValidationError


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing two histograms."""

    statistic: float
    p_value: float
    compatible: bool
    method: str
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"{self.method}: statistic={self.statistic:.4g}, "
            f"p={self.p_value:.4g} -> {'compatible' if self.compatible else 'INCOMPATIBLE'}"
        )


class Histogram1D:
    """A fixed-binning one dimensional histogram with sum-of-weights errors."""

    def __init__(
        self,
        name: str,
        n_bins: int,
        low: float,
        high: float,
        log_bins: bool = False,
    ) -> None:
        if n_bins <= 0:
            raise ValidationError("histogram needs at least one bin")
        if high <= low:
            raise ValidationError("histogram upper edge must exceed lower edge")
        if log_bins and low <= 0:
            raise ValidationError("logarithmic binning requires a positive lower edge")
        self.name = name
        self.n_bins = n_bins
        self.low = low
        self.high = high
        self.log_bins = log_bins
        if log_bins:
            self.edges = np.logspace(math.log10(low), math.log10(high), n_bins + 1)
        else:
            self.edges = np.linspace(low, high, n_bins + 1)
        self.counts = np.zeros(n_bins, dtype=float)
        self.sum_weights_squared = np.zeros(n_bins, dtype=float)
        self.underflow = 0.0
        self.overflow = 0.0
        self.n_entries = 0

    def fill(self, value: float, weight: float = 1.0) -> None:
        """Add one entry to the histogram."""
        self.n_entries += 1
        if value < self.low:
            self.underflow += weight
            return
        if value >= self.high:
            self.overflow += weight
            return
        index = int(np.searchsorted(self.edges, value, side="right")) - 1
        index = min(max(index, 0), self.n_bins - 1)
        self.counts[index] += weight
        self.sum_weights_squared[index] += weight * weight

    def fill_many(self, values: Iterable[float], weights: Optional[Iterable[float]] = None) -> None:
        """Add many entries; *weights* defaults to one per entry."""
        values = list(values)
        if weights is None:
            weights = [1.0] * len(values)
        else:
            weights = list(weights)
        if len(weights) != len(values):
            raise ValidationError("values and weights must have equal length")
        for value, weight in zip(values, weights):
            self.fill(float(value), float(weight))

    @property
    def total(self) -> float:
        """Integral of the histogram (excluding under/overflow)."""
        return float(self.counts.sum())

    @property
    def bin_centers(self) -> np.ndarray:
        """Centres of all bins."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def bin_errors(self) -> np.ndarray:
        """Per-bin statistical errors (sqrt of the sum of squared weights)."""
        return np.sqrt(self.sum_weights_squared)

    def mean(self) -> float:
        """Weighted mean of the histogrammed variable."""
        if self.total == 0:
            return 0.0
        return float(np.average(self.bin_centers, weights=self.counts))

    def std(self) -> float:
        """Weighted standard deviation of the histogrammed variable."""
        if self.total == 0:
            return 0.0
        mean = self.mean()
        variance = float(np.average((self.bin_centers - mean) ** 2, weights=self.counts))
        return math.sqrt(max(variance, 0.0))

    def normalised(self) -> np.ndarray:
        """Bin contents normalised to unit integral."""
        if self.total == 0:
            return np.zeros_like(self.counts)
        return self.counts / self.total

    def scaled(self, factor: float) -> "Histogram1D":
        """Return a copy with contents and errors scaled by *factor*."""
        clone = self.clone()
        clone.counts = self.counts * factor
        clone.sum_weights_squared = self.sum_weights_squared * factor * factor
        clone.underflow = self.underflow * factor
        clone.overflow = self.overflow * factor
        return clone

    def clone(self, name: Optional[str] = None) -> "Histogram1D":
        """Return a deep copy of the histogram, optionally renamed."""
        clone = Histogram1D(
            name or self.name, self.n_bins, self.low, self.high, self.log_bins
        )
        clone.counts = self.counts.copy()
        clone.sum_weights_squared = self.sum_weights_squared.copy()
        clone.underflow = self.underflow
        clone.overflow = self.overflow
        clone.n_entries = self.n_entries
        return clone

    def to_dict(self) -> Dict[str, object]:
        """Serialise the histogram to plain Python types (for storage)."""
        return {
            "name": self.name,
            "n_bins": self.n_bins,
            "low": self.low,
            "high": self.high,
            "log_bins": self.log_bins,
            "counts": self.counts.tolist(),
            "sum_weights_squared": self.sum_weights_squared.tolist(),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "n_entries": self.n_entries,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Histogram1D":
        """Reconstruct a histogram serialised by :meth:`to_dict`."""
        histogram = cls(
            str(payload["name"]),
            int(payload["n_bins"]),
            float(payload["low"]),
            float(payload["high"]),
            bool(payload.get("log_bins", False)),
        )
        histogram.counts = np.array(payload["counts"], dtype=float)
        histogram.sum_weights_squared = np.array(
            payload["sum_weights_squared"], dtype=float
        )
        histogram.underflow = float(payload.get("underflow", 0.0))
        histogram.overflow = float(payload.get("overflow", 0.0))
        histogram.n_entries = int(payload.get("n_entries", 0))
        return histogram

    def compatible_binning(self, other: "Histogram1D") -> bool:
        """Return True if *other* has identical binning."""
        return (
            self.n_bins == other.n_bins
            and math.isclose(self.low, other.low)
            and math.isclose(self.high, other.high)
            and self.log_bins == other.log_bins
        )


def chi2_comparison(
    reference: Histogram1D,
    candidate: Histogram1D,
    threshold_p_value: float = 0.01,
) -> ComparisonResult:
    """Bin-by-bin chi-square compatibility test between two histograms."""
    _require_same_binning(reference, candidate)
    errors_squared = reference.sum_weights_squared + candidate.sum_weights_squared
    mask = errors_squared > 0
    n_dof = int(mask.sum())
    if n_dof == 0:
        return ComparisonResult(0.0, 1.0, True, "chi2", "both histograms empty")
    delta = reference.counts[mask] - candidate.counts[mask]
    chi2 = float(np.sum(delta * delta / errors_squared[mask]))
    p_value = _chi2_survival(chi2, n_dof)
    return ComparisonResult(
        statistic=chi2,
        p_value=p_value,
        compatible=p_value >= threshold_p_value,
        method="chi2",
        detail=f"chi2/ndof = {chi2:.2f}/{n_dof}",
    )


def ks_comparison(
    reference: Histogram1D,
    candidate: Histogram1D,
    threshold_p_value: float = 0.01,
) -> ComparisonResult:
    """Kolmogorov–Smirnov compatibility test on the binned distributions."""
    _require_same_binning(reference, candidate)
    total_ref = reference.total
    total_cand = candidate.total
    if total_ref == 0 and total_cand == 0:
        return ComparisonResult(0.0, 1.0, True, "ks", "both histograms empty")
    if total_ref == 0 or total_cand == 0:
        return ComparisonResult(1.0, 0.0, False, "ks", "one histogram empty")
    cdf_ref = np.cumsum(reference.counts) / total_ref
    cdf_cand = np.cumsum(candidate.counts) / total_cand
    statistic = float(np.max(np.abs(cdf_ref - cdf_cand)))
    effective_n = total_ref * total_cand / (total_ref + total_cand)
    p_value = _ks_survival(statistic * (math.sqrt(effective_n) + 0.12 + 0.11 / math.sqrt(effective_n)))
    return ComparisonResult(
        statistic=statistic,
        p_value=p_value,
        compatible=p_value >= threshold_p_value,
        method="ks",
        detail=f"max CDF distance = {statistic:.4f}",
    )


def _require_same_binning(reference: Histogram1D, candidate: Histogram1D) -> None:
    if not reference.compatible_binning(candidate):
        raise ValidationError(
            f"histograms {reference.name!r} and {candidate.name!r} have different binning"
        )


def _chi2_survival(chi2: float, n_dof: int) -> float:
    """Survival function of the chi-square distribution (regularised gamma)."""
    if chi2 <= 0:
        return 1.0
    return float(_upper_incomplete_gamma_regularised(n_dof / 2.0, chi2 / 2.0))


def _upper_incomplete_gamma_regularised(a: float, x: float) -> float:
    """Q(a, x) using a series / continued fraction split, as in Numerical Recipes."""
    if x < 0 or a <= 0:
        raise ValidationError("invalid arguments to incomplete gamma")
    if x == 0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _lower_gamma_series(a, x)
    return _upper_gamma_continued_fraction(a, x)


def _lower_gamma_series(a: float, x: float) -> float:
    term = 1.0 / a
    total = term
    for n in range(1, 500):
        term *= x / (a + n)
        total += term
        if abs(term) < abs(total) * 1e-14:
            break
    log_prefactor = -x + a * math.log(x) - math.lgamma(a)
    return total * math.exp(log_prefactor)


def _upper_gamma_continued_fraction(a: float, x: float) -> float:
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    log_prefactor = -x + a * math.log(x) - math.lgamma(a)
    return math.exp(log_prefactor) * h


def _ks_survival(lam: float) -> float:
    """Kolmogorov distribution survival function."""
    if lam <= 0:
        return 1.0
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(max(total, 0.0), 1.0)


class HistogramSet:
    """A named collection of histograms, the typical output of one test."""

    def __init__(self, histograms: Optional[Sequence[Histogram1D]] = None) -> None:
        self._histograms: Dict[str, Histogram1D] = {}
        for histogram in histograms or []:
            self.add(histogram)

    def add(self, histogram: Histogram1D) -> None:
        """Add a histogram, rejecting duplicate names."""
        if histogram.name in self._histograms:
            raise ValidationError(f"duplicate histogram name {histogram.name!r}")
        self._histograms[histogram.name] = histogram

    def get(self, name: str) -> Histogram1D:
        """Return the histogram called *name*."""
        try:
            return self._histograms[name]
        except KeyError:
            raise ValidationError(f"no histogram named {name!r}") from None

    def names(self) -> List[str]:
        """Sorted list of histogram names."""
        return sorted(self._histograms)

    def __len__(self) -> int:
        return len(self._histograms)

    def __contains__(self, name: str) -> bool:
        return name in self._histograms

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Serialise every histogram in the set."""
        return {name: histogram.to_dict() for name, histogram in self._histograms.items()}

    @classmethod
    def from_dict(cls, payload: Dict[str, Dict[str, object]]) -> "HistogramSet":
        """Reconstruct a set serialised by :meth:`to_dict`."""
        return cls([Histogram1D.from_dict(entry) for entry in payload.values()])

    def compare(
        self,
        other: "HistogramSet",
        method: str = "chi2",
        threshold_p_value: float = 0.01,
    ) -> Dict[str, ComparisonResult]:
        """Compare all histograms present in both sets."""
        compare_fn = chi2_comparison if method == "chi2" else ks_comparison
        results: Dict[str, ComparisonResult] = {}
        for name in self.names():
            if name in other:
                results[name] = compare_fn(
                    self.get(name), other.get(name), threshold_p_value
                )
        return results


__all__ = [
    "Histogram1D",
    "HistogramSet",
    "ComparisonResult",
    "chi2_comparison",
    "ks_comparison",
]
