"""Event and particle model for the synthetic HEP data substrate.

The validation chains of the HERA experiments run from Monte Carlo generation
through detector simulation and reconstruction to physics analysis.  The real
experiments use their own Fortran/C++ event models; this module provides a
compact numpy-backed equivalent with just enough physics structure (four
vectors, particle identities, event records) for the validation framework to
produce and compare meaningful outputs across environments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro._common import ValidationError


#: Particle identity codes used by the toy generator (a tiny PDG subset).
PARTICLE_CODES: Dict[str, int] = {
    "e-": 11,
    "e+": -11,
    "nu_e": 12,
    "mu-": 13,
    "mu+": -13,
    "photon": 22,
    "pi+": 211,
    "pi-": -211,
    "K+": 321,
    "K-": -321,
    "proton": 2212,
    "neutron": 2112,
}

PARTICLE_MASSES: Dict[int, float] = {
    11: 0.000511,
    -11: 0.000511,
    12: 0.0,
    13: 0.105658,
    -13: 0.105658,
    22: 0.0,
    211: 0.13957,
    -211: 0.13957,
    321: 0.493677,
    -321: 0.493677,
    2212: 0.938272,
    2112: 0.939565,
}


@dataclass(frozen=True)
class FourVector:
    """A relativistic four vector (E, px, py, pz) in GeV."""

    energy: float
    px: float
    py: float
    pz: float

    @property
    def pt(self) -> float:
        """Transverse momentum."""
        return math.hypot(self.px, self.py)

    @property
    def momentum(self) -> float:
        """Magnitude of the three momentum."""
        return math.sqrt(self.px ** 2 + self.py ** 2 + self.pz ** 2)

    @property
    def mass(self) -> float:
        """Invariant mass; clipped at zero for numerical safety."""
        m2 = self.energy ** 2 - self.momentum ** 2
        return math.sqrt(m2) if m2 > 0.0 else 0.0

    @property
    def rapidity(self) -> float:
        """Rapidity along the beam (z) axis."""
        if self.energy <= abs(self.pz):
            return math.copysign(20.0, self.pz)
        return 0.5 * math.log((self.energy + self.pz) / (self.energy - self.pz))

    @property
    def phi(self) -> float:
        """Azimuthal angle in the transverse plane."""
        return math.atan2(self.py, self.px)

    @property
    def theta(self) -> float:
        """Polar angle with respect to the beam axis."""
        if self.momentum == 0.0:
            return 0.0
        return math.acos(max(-1.0, min(1.0, self.pz / self.momentum)))

    def __add__(self, other: "FourVector") -> "FourVector":
        return FourVector(
            self.energy + other.energy,
            self.px + other.px,
            self.py + other.py,
            self.pz + other.pz,
        )

    @staticmethod
    def from_pt_eta_phi(pt: float, eta: float, phi: float, mass: float = 0.0) -> "FourVector":
        """Build a four vector from collider coordinates."""
        px = pt * math.cos(phi)
        py = pt * math.sin(phi)
        pz = pt * math.sinh(eta)
        energy = math.sqrt(px ** 2 + py ** 2 + pz ** 2 + mass ** 2)
        return FourVector(energy, px, py, pz)


@dataclass(frozen=True)
class Particle:
    """A generated or reconstructed particle."""

    pdg_code: int
    four_vector: FourVector
    charge: int
    status: int = 1

    @property
    def name(self) -> str:
        """Particle name if the code is known, otherwise the raw code."""
        for name, code in PARTICLE_CODES.items():
            if code == self.pdg_code:
                return name
        return str(self.pdg_code)

    @property
    def is_charged(self) -> bool:
        """Return True for particles with non-zero electric charge."""
        return self.charge != 0


@dataclass
class Event:
    """One physics event: a beam configuration plus final state particles."""

    event_number: int
    process: str
    q_squared: float
    bjorken_x: float
    inelasticity: float
    particles: List[Particle] = field(default_factory=list)
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.q_squared < 0:
            raise ValidationError("Q^2 must be non-negative")
        if not 0.0 <= self.inelasticity <= 1.0:
            raise ValidationError("inelasticity y must lie in [0, 1]")

    @property
    def scattered_lepton(self) -> Optional[Particle]:
        """The scattered beam lepton, if present in the final state."""
        for particle in self.particles:
            if abs(particle.pdg_code) == 11 and particle.status == 1:
                return particle
        return None

    @property
    def hadronic_final_state(self) -> List[Particle]:
        """All final state particles except the scattered lepton."""
        lepton = self.scattered_lepton
        return [
            particle
            for particle in self.particles
            if particle is not lepton and particle.status == 1
        ]

    @property
    def charged_multiplicity(self) -> int:
        """Number of charged final state particles."""
        return sum(1 for particle in self.particles if particle.is_charged)

    def total_four_vector(self) -> FourVector:
        """Vector sum of all final state particles."""
        total = FourVector(0.0, 0.0, 0.0, 0.0)
        for particle in self.particles:
            total = total + particle.four_vector
        return total

    def transverse_energy(self) -> float:
        """Scalar sum of transverse momenta of the final state."""
        return sum(particle.four_vector.pt for particle in self.particles)


class EventRecord:
    """An in-memory collection of events, the unit passed between chain steps.

    The record keeps simple provenance so that files written by one step of an
    analysis chain can be traced back through the chain, mirroring how the
    sp-system keeps all intermediate files of a validation job.
    """

    def __init__(self, events: Optional[Sequence[Event]] = None,
                 provenance: Optional[List[str]] = None) -> None:
        self._events: List[Event] = list(events or [])
        self.provenance: List[str] = list(provenance or [])

    def append(self, event: Event) -> None:
        """Add an event to the record."""
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        """Add several events to the record."""
        self._events.extend(events)

    def add_provenance(self, step: str) -> None:
        """Record that *step* has processed this record."""
        self.provenance.append(step)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> List[Event]:
        """The stored events (shared list, not a copy)."""
        return self._events

    def total_weight(self) -> float:
        """Sum of event weights, used for cross section normalisation."""
        return float(sum(event.weight for event in self._events))

    def select(self, predicate) -> "EventRecord":
        """Return a new record with the events passing *predicate*."""
        selected = EventRecord(
            [event for event in self._events if predicate(event)],
            provenance=list(self.provenance),
        )
        selected.add_provenance("selection")
        return selected

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics used by quick validation comparisons."""
        if not self._events:
            return {
                "n_events": 0.0,
                "mean_q2": 0.0,
                "mean_x": 0.0,
                "mean_multiplicity": 0.0,
                "total_weight": 0.0,
            }
        q2_values = np.array([event.q_squared for event in self._events])
        x_values = np.array([event.bjorken_x for event in self._events])
        multiplicities = np.array(
            [len(event.particles) for event in self._events], dtype=float
        )
        return {
            "n_events": float(len(self._events)),
            "mean_q2": float(q2_values.mean()),
            "mean_x": float(x_values.mean()),
            "mean_multiplicity": float(multiplicities.mean()),
            "total_weight": self.total_weight(),
        }


__all__ = [
    "FourVector",
    "Particle",
    "Event",
    "EventRecord",
    "PARTICLE_CODES",
    "PARTICLE_MASSES",
]
