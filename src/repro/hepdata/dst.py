"""Data summary formats: the multi-level file production of the chains.

The H1 chain in the paper goes "from MC generation and simulation, through
multi-level file production and ending with a full physics analysis".  This
module models that multi-level file production: reconstructed events are
condensed into DST (data summary tape) records, which are further reduced to
analysis-level micro-DST (ntuple-like) rows.  Both levels can be serialised to
plain dictionaries, which is how the validation framework stores chain
outputs on the common storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro._common import ValidationError
from repro.hepdata.reconstruction import ReconstructedEvent


#: Columns of the analysis-level micro-DST ntuple.
MICRO_DST_COLUMNS = (
    "event_number",
    "q2",
    "x",
    "y",
    "n_jets",
    "leading_jet_pt",
    "charged_multiplicity",
    "transverse_energy",
    "weight",
)


@dataclass(frozen=True)
class DSTRecord:
    """One event on the data summary tape."""

    event_number: int
    process: str
    q_squared: float
    bjorken_x: float
    inelasticity: float
    n_jets: int
    leading_jet_pt: float
    charged_multiplicity: int
    transverse_energy: float
    kinematics_consistent: bool
    weight: float

    def to_dict(self) -> Dict[str, object]:
        """Serialise to plain types for storage."""
        return {
            "event_number": self.event_number,
            "process": self.process,
            "q_squared": self.q_squared,
            "bjorken_x": self.bjorken_x,
            "inelasticity": self.inelasticity,
            "n_jets": self.n_jets,
            "leading_jet_pt": self.leading_jet_pt,
            "charged_multiplicity": self.charged_multiplicity,
            "transverse_energy": self.transverse_energy,
            "kinematics_consistent": self.kinematics_consistent,
            "weight": self.weight,
        }


class DSTFile:
    """An ordered collection of :class:`DSTRecord` objects."""

    def __init__(self, records: Optional[Sequence[DSTRecord]] = None,
                 production_tag: str = "") -> None:
        self.records: List[DSTRecord] = list(records or [])
        self.production_tag = production_tag

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def append(self, record: DSTRecord) -> None:
        """Add a record to the file."""
        self.records.append(record)

    def to_dict(self) -> Dict[str, object]:
        """Serialise the whole file."""
        return {
            "production_tag": self.production_tag,
            "records": [record.to_dict() for record in self.records],
        }

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics used by file-level validation comparisons."""
        if not self.records:
            return {"n_records": 0.0, "mean_q2": 0.0, "mean_jets": 0.0, "total_weight": 0.0}
        q2 = np.array([record.q_squared for record in self.records])
        jets = np.array([record.n_jets for record in self.records], dtype=float)
        weights = np.array([record.weight for record in self.records])
        return {
            "n_records": float(len(self.records)),
            "mean_q2": float(q2.mean()),
            "mean_jets": float(jets.mean()),
            "total_weight": float(weights.sum()),
        }


class DSTProducer:
    """Produces DST files from reconstructed events."""

    def __init__(self, production_tag: str = "dst-production") -> None:
        self.production_tag = production_tag

    def produce(self, reconstructed: Iterable[ReconstructedEvent]) -> DSTFile:
        """Condense reconstructed events into a DST file."""
        dst = DSTFile(production_tag=self.production_tag)
        for event in reconstructed:
            leading_pt = max((jet.pt for jet in event.jets), default=0.0)
            dst.append(
                DSTRecord(
                    event_number=event.event_number,
                    process=event.process,
                    q_squared=event.kinematics.q_squared_electron,
                    bjorken_x=event.kinematics.bjorken_x_electron,
                    inelasticity=event.kinematics.inelasticity_electron,
                    n_jets=len(event.jets),
                    leading_jet_pt=leading_pt,
                    charged_multiplicity=event.charged_multiplicity,
                    transverse_energy=event.transverse_energy,
                    kinematics_consistent=event.kinematics.consistent(),
                    weight=event.weight,
                )
            )
        return dst


class MicroDST:
    """Analysis-level ntuple: a column-oriented reduction of a DST file."""

    def __init__(self, columns: Optional[Dict[str, np.ndarray]] = None) -> None:
        self.columns: Dict[str, np.ndarray] = columns or {
            name: np.array([]) for name in MICRO_DST_COLUMNS
        }
        lengths = {len(values) for values in self.columns.values()}
        if len(lengths) > 1:
            raise ValidationError("micro-DST columns must have equal length")

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> np.ndarray:
        """Return the named column."""
        try:
            return self.columns[name]
        except KeyError:
            raise ValidationError(f"micro-DST has no column {name!r}") from None

    def to_dict(self) -> Dict[str, List[float]]:
        """Serialise columns to plain lists."""
        return {name: values.tolist() for name, values in self.columns.items()}

    @classmethod
    def from_dict(cls, payload: Dict[str, List[float]]) -> "MicroDST":
        """Reconstruct from :meth:`to_dict` output."""
        return cls({name: np.array(values, dtype=float) for name, values in payload.items()})

    def select(self, mask: np.ndarray) -> "MicroDST":
        """Return a micro-DST containing only the rows where *mask* is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != len(self):
            raise ValidationError("selection mask length does not match rows")
        return MicroDST({name: values[mask] for name, values in self.columns.items()})


class MicroDSTProducer:
    """Reduces DST files to analysis-level micro-DSTs."""

    def produce(self, dst: DSTFile) -> MicroDST:
        """Flatten a DST file into columns."""
        columns: Dict[str, List[float]] = {name: [] for name in MICRO_DST_COLUMNS}
        for record in dst:
            columns["event_number"].append(float(record.event_number))
            columns["q2"].append(record.q_squared)
            columns["x"].append(record.bjorken_x)
            columns["y"].append(record.inelasticity)
            columns["n_jets"].append(float(record.n_jets))
            columns["leading_jet_pt"].append(record.leading_jet_pt)
            columns["charged_multiplicity"].append(float(record.charged_multiplicity))
            columns["transverse_energy"].append(record.transverse_energy)
            columns["weight"].append(record.weight)
        return MicroDST({name: np.array(values, dtype=float) for name, values in columns.items()})


__all__ = [
    "DSTRecord",
    "DSTFile",
    "DSTProducer",
    "MicroDST",
    "MicroDSTProducer",
    "MICRO_DST_COLUMNS",
]
