"""Event reconstruction: from detector-level particles to physics quantities.

The third stage of the analysis chains re-derives the event kinematics from
the measured particles (rather than from generator truth) and builds jets.
Two kinematic reconstruction methods are provided — the "electron method" and
the "Jacquet–Blondel" hadronic method — because having two independent
reconstructions of the same quantity is exactly the kind of internal
consistency the experiments' validation tests check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._common import ValidationError
from repro.hepdata.event import Event, EventRecord, FourVector, Particle
from repro.hepdata.generator import LEPTON_BEAM_ENERGY, PROTON_BEAM_ENERGY
from repro.hepdata.numerics import NumericContext, REFERENCE_CONTEXT


@dataclass(frozen=True)
class ReconstructedKinematics:
    """DIS kinematics reconstructed from the measured final state."""

    q_squared_electron: float
    bjorken_x_electron: float
    inelasticity_electron: float
    q_squared_jb: float
    inelasticity_jb: float
    has_scattered_lepton: bool

    def consistent(self, tolerance: float = 0.5) -> bool:
        """Check rough agreement between the electron and hadron methods."""
        if not self.has_scattered_lepton:
            return False
        if self.q_squared_electron <= 0 or self.q_squared_jb <= 0:
            return False
        ratio = self.q_squared_jb / self.q_squared_electron
        return (1.0 - tolerance) <= ratio <= (1.0 + 1.5 * tolerance)


@dataclass(frozen=True)
class Jet:
    """A reconstructed jet (simple cone clustering of the hadronic final state)."""

    four_vector: FourVector
    n_constituents: int

    @property
    def pt(self) -> float:
        """Transverse momentum of the jet."""
        return self.four_vector.pt


@dataclass
class ReconstructedEvent:
    """Full reconstruction output for one event."""

    event_number: int
    process: str
    kinematics: ReconstructedKinematics
    jets: List[Jet]
    charged_multiplicity: int
    transverse_energy: float
    weight: float = 1.0


class EventReconstruction:
    """Reconstructs kinematics and jets from detector-level events."""

    def __init__(
        self,
        numeric_context: Optional[NumericContext] = None,
        jet_min_pt: float = 4.0,
        jet_cone_radius: float = 1.0,
    ) -> None:
        if jet_min_pt <= 0:
            raise ValidationError("jet pt threshold must be positive")
        if jet_cone_radius <= 0:
            raise ValidationError("jet cone radius must be positive")
        self.numeric_context = numeric_context or REFERENCE_CONTEXT
        self.jet_min_pt = jet_min_pt
        self.jet_cone_radius = jet_cone_radius

    def reconstruct(self, record: EventRecord) -> List[ReconstructedEvent]:
        """Reconstruct every event in *record*."""
        reconstructed = []
        for event in record:
            reconstructed.append(self.reconstruct_event(event))
        return reconstructed

    def reconstruct_event(self, event: Event) -> ReconstructedEvent:
        """Reconstruct kinematics and jets for a single event."""
        kinematics = self._reconstruct_kinematics(event)
        jets = self._cluster_jets(event)
        return ReconstructedEvent(
            event_number=event.event_number,
            process=event.process,
            kinematics=kinematics,
            jets=jets,
            charged_multiplicity=event.charged_multiplicity,
            transverse_energy=self.numeric_context.perturb_scalar(
                event.transverse_energy(), f"et:{event.event_number}"
            ),
            weight=event.weight,
        )

    def _reconstruct_kinematics(self, event: Event) -> ReconstructedKinematics:
        """Electron-method and Jacquet–Blondel kinematic reconstruction."""
        lepton = event.scattered_lepton
        if lepton is not None:
            vector = lepton.four_vector
            energy = max(vector.energy, 1e-6)
            # The polar angle is measured from the incident lepton direction
            # (the +z axis of the toy event model), so the electron-method
            # formulae use sin^2(theta/2) for Q^2 and cos^2(theta/2) for y.
            theta = vector.theta
            q2_e = 4.0 * LEPTON_BEAM_ENERGY * energy * math.sin(theta / 2.0) ** 2
            y_e = 1.0 - (energy / LEPTON_BEAM_ENERGY) * math.cos(theta / 2.0) ** 2
            y_e = min(max(y_e, 1e-4), 1.0)
            s = 4.0 * LEPTON_BEAM_ENERGY * PROTON_BEAM_ENERGY
            x_e = q2_e / (s * y_e) if y_e > 0 else 0.0
            x_e = min(max(x_e, 0.0), 1.0)
            has_lepton = True
        else:
            q2_e, y_e, x_e = 0.0, 0.0, 0.0
            has_lepton = False

        # Jacquet–Blondel method from the hadronic final state.
        hadrons = event.hadronic_final_state
        sum_e_minus_pz = sum(
            particle.four_vector.energy - particle.four_vector.pz
            for particle in hadrons
        )
        sum_px = sum(particle.four_vector.px for particle in hadrons)
        sum_py = sum(particle.four_vector.py for particle in hadrons)
        y_jb = sum_e_minus_pz / (2.0 * LEPTON_BEAM_ENERGY)
        y_jb = min(max(y_jb, 1e-4), 1.0)
        pt_hadronic_sq = sum_px ** 2 + sum_py ** 2
        q2_jb = pt_hadronic_sq / max(1.0 - y_jb, 1e-4)

        tag = f"kin:{event.event_number}"
        return ReconstructedKinematics(
            q_squared_electron=self.numeric_context.perturb_scalar(q2_e, f"{tag}:q2e"),
            bjorken_x_electron=self.numeric_context.perturb_scalar(x_e, f"{tag}:xe"),
            inelasticity_electron=y_e,
            q_squared_jb=self.numeric_context.perturb_scalar(q2_jb, f"{tag}:q2jb"),
            inelasticity_jb=y_jb,
            has_scattered_lepton=has_lepton,
        )

    def _cluster_jets(self, event: Event) -> List[Jet]:
        """Greedy cone clustering of the hadronic final state."""
        hadrons = sorted(
            event.hadronic_final_state,
            key=lambda particle: particle.four_vector.pt,
            reverse=True,
        )
        used = [False] * len(hadrons)
        jets: List[Jet] = []
        for seed_index, seed in enumerate(hadrons):
            if used[seed_index]:
                continue
            if seed.four_vector.pt < 0.5:
                break
            members = [seed_index]
            used[seed_index] = True
            seed_eta = self._pseudorapidity(seed.four_vector)
            seed_phi = seed.four_vector.phi
            for other_index, other in enumerate(hadrons):
                if used[other_index]:
                    continue
                d_eta = self._pseudorapidity(other.four_vector) - seed_eta
                d_phi = self._delta_phi(other.four_vector.phi, seed_phi)
                if math.hypot(d_eta, d_phi) <= self.jet_cone_radius:
                    members.append(other_index)
                    used[other_index] = True
            total = FourVector(0.0, 0.0, 0.0, 0.0)
            for index in members:
                total = total + hadrons[index].four_vector
            if total.pt >= self.jet_min_pt:
                jets.append(Jet(four_vector=total, n_constituents=len(members)))
        return jets

    @staticmethod
    def _pseudorapidity(vector: FourVector) -> float:
        theta = vector.theta
        if theta <= 0.0:
            return 10.0
        if theta >= math.pi:
            return -10.0
        return -math.log(math.tan(theta / 2.0))

    @staticmethod
    def _delta_phi(phi_a: float, phi_b: float) -> float:
        delta = phi_a - phi_b
        while delta > math.pi:
            delta -= 2.0 * math.pi
        while delta < -math.pi:
            delta += 2.0 * math.pi
        return delta


__all__ = [
    "ReconstructedKinematics",
    "Jet",
    "ReconstructedEvent",
    "EventReconstruction",
]
