"""Toy Monte Carlo event generator for deep inelastic scattering.

The H1 analysis chains described in the paper start with "MC generation and
simulation".  This module provides a small parameterised generator of
neutral-current deep inelastic scattering (DIS) events at HERA kinematics
(27.6 GeV leptons on 920 GeV protons).  It is not a physics-accurate
generator; it produces events with realistic *structure* — steeply falling
Q² spectrum, correlated Bjorken-x, charged multiplicities growing with the
hadronic energy — so that downstream simulation, reconstruction and analysis
steps have meaningful inputs whose statistical properties are stable and
comparable across validation runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro._common import ValidationError
from repro.hepdata.event import (
    Event,
    EventRecord,
    FourVector,
    PARTICLE_MASSES,
    Particle,
)
from repro.hepdata.numerics import NumericContext, REFERENCE_CONTEXT


#: HERA beam energies in GeV.
LEPTON_BEAM_ENERGY = 27.6
PROTON_BEAM_ENERGY = 920.0


@dataclass(frozen=True)
class GeneratorSettings:
    """Physics settings of the toy generator.

    Attributes
    ----------
    process:
        Name of the simulated process, recorded in every event.
    q2_min / q2_max:
        Range of the negative four-momentum transfer squared, in GeV².
    mean_charged_multiplicity:
        Average charged multiplicity of the hadronic final state at the
        reference hadronic energy.
    cross_section_pb:
        Nominal cross section of the process in picobarn; used by the
        analysis step to normalise event yields into cross sections.
    """

    process: str = "nc_dis"
    q2_min: float = 4.0
    q2_max: float = 10000.0
    mean_charged_multiplicity: float = 8.0
    cross_section_pb: float = 8200.0

    def __post_init__(self) -> None:
        if self.q2_min <= 0 or self.q2_max <= self.q2_min:
            raise ValidationError("require 0 < q2_min < q2_max")
        if self.mean_charged_multiplicity <= 0:
            raise ValidationError("mean charged multiplicity must be positive")
        if self.cross_section_pb <= 0:
            raise ValidationError("cross section must be positive")


class MonteCarloGenerator:
    """Generates :class:`EventRecord` objects with DIS-like kinematics."""

    def __init__(
        self,
        settings: Optional[GeneratorSettings] = None,
        numeric_context: Optional[NumericContext] = None,
    ) -> None:
        self.settings = settings or GeneratorSettings()
        self.numeric_context = numeric_context or REFERENCE_CONTEXT

    def generate(self, n_events: int, seed: int = 1) -> EventRecord:
        """Generate *n_events* events using the deterministic *seed*."""
        if n_events < 0:
            raise ValidationError("cannot generate a negative number of events")
        rng = np.random.default_rng(seed)
        record = EventRecord()
        record.add_provenance(f"mc-generation:{self.settings.process}:seed={seed}")
        sqrt_s = math.sqrt(4.0 * LEPTON_BEAM_ENERGY * PROTON_BEAM_ENERGY)
        s = sqrt_s ** 2
        for event_number in range(n_events):
            q2 = self._sample_q2(rng)
            # y is bounded below by the kinematic limit Q^2 = s x y with x <= 1.
            y_min = max(q2 / s, 0.005)
            y = float(rng.uniform(y_min, 0.95))
            x = q2 / (s * y)
            x = min(max(x, 1e-5), 0.99)
            particles = self._build_final_state(rng, q2, y)
            event = Event(
                event_number=event_number,
                process=self.settings.process,
                q_squared=self.numeric_context.perturb_scalar(q2, f"q2:{event_number}"),
                bjorken_x=self.numeric_context.perturb_scalar(x, f"x:{event_number}"),
                inelasticity=y,
                particles=particles,
                weight=1.0,
            )
            record.append(event)
        return record

    def _sample_q2(self, rng: np.random.Generator) -> float:
        """Sample Q² from a 1/Q⁴-like falling spectrum within the configured range."""
        q2_min = self.settings.q2_min
        q2_max = self.settings.q2_max
        u = float(rng.uniform(0.0, 1.0))
        # Inverse transform of f(Q^2) ~ 1/Q^4 between the bounds.
        inv_min = 1.0 / q2_min ** 3
        inv_max = 1.0 / q2_max ** 3
        value = (inv_min - u * (inv_min - inv_max)) ** (-1.0 / 3.0)
        return float(value)

    def _build_final_state(
        self, rng: np.random.Generator, q2: float, y: float
    ) -> List[Particle]:
        """Build a scattered lepton plus a hadronic final state."""
        particles: List[Particle] = []
        # Scattered electron: energy and angle follow from the kinematics in a
        # simplified (collinear) approximation.
        scattered_energy = max(LEPTON_BEAM_ENERGY * (1.0 - y) + q2 / (4.0 * LEPTON_BEAM_ENERGY), 0.5)
        cos_theta = 1.0 - q2 / (2.0 * LEPTON_BEAM_ENERGY * scattered_energy)
        cos_theta = max(-1.0, min(1.0, cos_theta))
        theta = math.acos(cos_theta)
        phi = float(rng.uniform(0.0, 2.0 * math.pi))
        pt = scattered_energy * math.sin(theta)
        pz = scattered_energy * math.cos(theta)
        lepton_vector = FourVector(
            energy=scattered_energy,
            px=pt * math.cos(phi),
            py=pt * math.sin(phi),
            pz=pz,
        )
        particles.append(Particle(pdg_code=11, four_vector=lepton_vector, charge=-1))

        # Hadronic final state: multiplicity scales with log of the hadronic
        # invariant mass W^2 ~ Q^2 (1 - x) / x, modelled here via y.
        hadronic_energy = y * PROTON_BEAM_ENERGY + q2 / (2.0 * PROTON_BEAM_ENERGY)
        mean_mult = self.settings.mean_charged_multiplicity * (
            0.5 + 0.5 * math.log1p(hadronic_energy) / math.log1p(PROTON_BEAM_ENERGY)
        )
        multiplicity = int(rng.poisson(mean_mult)) + 1
        # The hadronic system balances the scattered lepton in the transverse
        # plane and carries E - pz = 2 E_e y, so that the Jacquet-Blondel
        # reconstruction of y and Q^2 agrees with the electron method within
        # resolution effects — the consistency the validation tests check.
        recoil_px = -lepton_vector.px
        recoil_py = -lepton_vector.py
        fractions = rng.dirichlet(np.ones(multiplicity)) if multiplicity > 1 else np.array([1.0])
        total_e_minus_pz = 2.0 * LEPTON_BEAM_ENERGY * y
        scalar_pt_estimate = max(math.hypot(recoil_px, recoil_py), 0.2 * multiplicity)
        for index in range(multiplicity):
            pion_code = 211 if index % 2 == 0 else -211
            mass = PARTICLE_MASSES[pion_code]
            fraction = float(fractions[index])
            track_px = recoil_px * fraction + float(rng.normal(0.0, 0.15))
            track_py = recoil_py * fraction + float(rng.normal(0.0, 0.15))
            track_pt = max(math.hypot(track_px, track_py), 0.05)
            # Choose the longitudinal angle so the track carries its share of
            # the hadronic E - pz budget (with a mild spread).
            target_e_minus_pz = max(
                total_e_minus_pz * fraction * float(rng.uniform(0.7, 1.3)), 1e-3
            )
            eta = math.log(track_pt / target_e_minus_pz)
            eta = max(min(eta, 6.0), -4.5)
            track_phi = math.atan2(track_py, track_px)
            vector = FourVector.from_pt_eta_phi(track_pt, eta, track_phi, mass)
            particles.append(
                Particle(
                    pdg_code=pion_code,
                    four_vector=vector,
                    charge=1 if pion_code > 0 else -1,
                )
            )
        return particles


def default_processes() -> List[GeneratorSettings]:
    """Generator settings for the processes used by the experiment suites."""
    return [
        GeneratorSettings(
            process="nc_dis", q2_min=4.0, q2_max=10000.0,
            mean_charged_multiplicity=8.0, cross_section_pb=8200.0,
        ),
        GeneratorSettings(
            process="cc_dis", q2_min=100.0, q2_max=20000.0,
            mean_charged_multiplicity=10.0, cross_section_pb=35.0,
        ),
        GeneratorSettings(
            process="photoproduction", q2_min=4.0, q2_max=100.0,
            mean_charged_multiplicity=12.0, cross_section_pb=165000.0,
        ),
        GeneratorSettings(
            process="heavy_flavour", q2_min=10.0, q2_max=1000.0,
            mean_charged_multiplicity=14.0, cross_section_pb=410.0,
        ),
    ]


__all__ = [
    "GeneratorSettings",
    "MonteCarloGenerator",
    "default_processes",
    "LEPTON_BEAM_ENERGY",
    "PROTON_BEAM_ENERGY",
]
