"""Numeric context: how the computing environment perturbs physics results.

The whole point of the sp-system is that rebuilding the same experiment
software in a new environment can change its results — through word size,
compiler code generation, math library versions or genuine bugs exposed by
the migration.  The :class:`NumericContext` captures those effects for the
synthetic analysis chains: it is derived deterministically from an
environment configuration, and every hepdata algorithm routes its floating
point results through it.

Two regimes are modelled:

* benign, tiny rounding differences (different but statistically compatible
  results — validation should pass); and
* genuine defects (a 32-bit overflow, a removed interface silently returning
  zero) that shift results far outside statistical tolerance — validation
  should fail and the diagnosis should point at the responsible input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro._common import stable_fraction, stable_hash


@dataclass(frozen=True)
class NumericContext:
    """Deterministic description of environment-induced numeric behaviour.

    Attributes
    ----------
    label:
        Label of the environment the context was derived from.
    rounding_scale:
        Relative magnitude of benign rounding differences (for example
        ``1e-12`` for a recompilation with a different optimiser).
    libm_generation:
        Integer identifying the math library generation; different
        generations give slightly different transcendental functions.
    defects:
        Named defects active in this environment
        (``{"32bit-index-overflow": 0.05}`` meaning a 5% relative distortion).
    """

    label: str = "reference"
    rounding_scale: float = 0.0
    libm_generation: int = 0
    defects: Tuple[Tuple[str, float], ...] = ()

    def defect_map(self) -> Dict[str, float]:
        """Return the active defects as a dictionary."""
        return dict(self.defects)

    def has_defect(self, name: str) -> bool:
        """Return True if the named defect is active."""
        return name in self.defect_map()

    def perturb_scalar(self, value: float, tag: str) -> float:
        """Apply the context's rounding model to a single scalar.

        The perturbation is deterministic in ``(label, tag, value)`` so the
        same analysis run twice in the same environment gives bit-identical
        results — which is what makes run-against-run comparison meaningful.
        """
        if self.rounding_scale == 0.0 and self.libm_generation == 0:
            result = value
        else:
            offset = stable_fraction(self.label, self.libm_generation, tag) - 0.5
            result = value * (1.0 + 2.0 * offset * self.rounding_scale)
        for name, magnitude in self.defects:
            result = _apply_defect(result, name, magnitude, tag)
        return result

    def perturb_array(self, values: np.ndarray, tag: str) -> np.ndarray:
        """Apply the rounding model element-wise to *values*."""
        values = np.asarray(values, dtype=float)
        if self.rounding_scale != 0.0 or self.libm_generation != 0:
            offsets = np.array(
                [
                    stable_fraction(self.label, self.libm_generation, tag, index) - 0.5
                    for index in range(values.size)
                ]
            ).reshape(values.shape)
            values = values * (1.0 + 2.0 * offsets * self.rounding_scale)
        for name, magnitude in self.defects:
            values = np.array(
                [
                    _apply_defect(float(value), name, magnitude, f"{tag}:{index}")
                    for index, value in enumerate(values.ravel())
                ]
            ).reshape(values.shape)
        return values


def _apply_defect(value: float, name: str, magnitude: float, tag: str) -> float:
    """Apply one named defect to a scalar value."""
    if name == "32bit-index-overflow":
        # Large intermediate sums overflow a 32-bit index and drop entries.
        return value * (1.0 - magnitude)
    if name == "uninitialised-memory":
        # Pseudo-random garbage proportional to the magnitude.
        jitter = stable_fraction("uninitialised", tag) - 0.5
        return value * (1.0 + 2.0 * jitter * magnitude)
    if name == "removed-interface-returns-zero":
        # A removed external interface silently yields zero a fraction of calls.
        if stable_fraction("removed-api", tag) < magnitude:
            return 0.0
        return value
    if name == "libm-precision-change":
        jitter = stable_fraction("libm", tag) - 0.5
        return value * (1.0 + 2.0 * jitter * magnitude)
    # Unknown defects degrade results proportionally; keeping behaviour
    # defined means experiment-injected custom defects still work.
    return value * (1.0 + magnitude * (stable_fraction(name, tag) - 0.5))


#: The reference context: the environment the software was last known good on.
REFERENCE_CONTEXT = NumericContext()


def context_for_environment(
    label: str,
    word_size: int,
    compiler_strictness: int,
    libm_generation: int,
    defects: Optional[Dict[str, float]] = None,
) -> NumericContext:
    """Derive a :class:`NumericContext` from environment characteristics.

    Recompiling on a newer compiler or a different word size produces benign
    rounding differences whose size grows slightly with the "distance" from
    the original build environment; genuine defects are passed explicitly by
    the caller (typically the experiment definitions or a fault-injection
    benchmark).
    """
    rounding = 1e-12 * (1 + compiler_strictness) * (2 if word_size == 64 else 1)
    return NumericContext(
        label=label,
        rounding_scale=rounding,
        libm_generation=libm_generation,
        defects=tuple(sorted((defects or {}).items())),
    )


__all__ = [
    "NumericContext",
    "REFERENCE_CONTEXT",
    "context_for_environment",
]
