"""Physics analysis: the last step of a full validation chain.

The final step of the H1 chain is "a full physics analysis and subsequent
validation of the results".  This module implements a toy but complete
analysis on the micro-DST level: event selection, control histograms, a
single-differential cross-section measurement in Q² and a compact numeric
summary.  The validation framework compares the histograms and the summary
numbers between environments; the cross-section shape is also what the
physics-level regression tests look at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._common import ValidationError
from repro.hepdata.dst import MicroDST
from repro.hepdata.histogram import Histogram1D, HistogramSet
from repro.hepdata.numerics import NumericContext, REFERENCE_CONTEXT


@dataclass(frozen=True)
class SelectionCuts:
    """Event selection applied by the analysis."""

    min_q2: float = 10.0
    max_q2: float = 10000.0
    min_y: float = 0.05
    max_y: float = 0.9
    min_jets: int = 0

    def __post_init__(self) -> None:
        if self.min_q2 >= self.max_q2:
            raise ValidationError("min_q2 must be below max_q2")
        if not 0.0 <= self.min_y < self.max_y <= 1.0:
            raise ValidationError("require 0 <= min_y < max_y <= 1")
        if self.min_jets < 0:
            raise ValidationError("min_jets must be non-negative")


@dataclass
class CrossSectionPoint:
    """One bin of the measured differential cross section."""

    q2_low: float
    q2_high: float
    n_events: float
    cross_section_pb: float
    statistical_error_pb: float

    @property
    def q2_center(self) -> float:
        """Geometric bin centre (the spectrum is steeply falling)."""
        return math.sqrt(self.q2_low * self.q2_high)


@dataclass
class AnalysisResult:
    """Full output of one physics analysis run."""

    process: str
    n_input_events: int
    n_selected_events: int
    histograms: HistogramSet
    cross_section: List[CrossSectionPoint]
    summary: Dict[str, float]

    @property
    def selection_efficiency(self) -> float:
        """Fraction of input events passing the selection."""
        if self.n_input_events == 0:
            return 0.0
        return self.n_selected_events / self.n_input_events


#: Q² bin edges of the cross-section measurement (GeV²).
DEFAULT_Q2_BINS = (10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 3000.0, 10000.0)


class PhysicsAnalysis:
    """Runs the toy physics analysis on a micro-DST."""

    def __init__(
        self,
        process: str = "nc_dis",
        cuts: Optional[SelectionCuts] = None,
        luminosity_pb: float = 100.0,
        q2_bins: Sequence[float] = DEFAULT_Q2_BINS,
        numeric_context: Optional[NumericContext] = None,
    ) -> None:
        if luminosity_pb <= 0:
            raise ValidationError("luminosity must be positive")
        if len(q2_bins) < 2:
            raise ValidationError("need at least two Q2 bin edges")
        if list(q2_bins) != sorted(q2_bins):
            raise ValidationError("Q2 bin edges must be increasing")
        self.process = process
        self.cuts = cuts or SelectionCuts()
        self.luminosity_pb = luminosity_pb
        self.q2_bins = tuple(float(edge) for edge in q2_bins)
        self.numeric_context = numeric_context or REFERENCE_CONTEXT

    def run(self, micro_dst: MicroDST) -> AnalysisResult:
        """Apply the selection, fill histograms and measure the cross section."""
        n_input = len(micro_dst)
        selected = self._select(micro_dst)
        histograms = self._fill_histograms(selected)
        cross_section = self._measure_cross_section(selected)
        summary = self._summarise(selected, cross_section, n_input)
        return AnalysisResult(
            process=self.process,
            n_input_events=n_input,
            n_selected_events=len(selected),
            histograms=histograms,
            cross_section=cross_section,
            summary=summary,
        )

    def _select(self, micro_dst: MicroDST) -> MicroDST:
        """Apply the analysis selection cuts."""
        if len(micro_dst) == 0:
            return micro_dst
        q2 = micro_dst.column("q2")
        y = micro_dst.column("y")
        n_jets = micro_dst.column("n_jets")
        mask = (
            (q2 >= self.cuts.min_q2)
            & (q2 < self.cuts.max_q2)
            & (y >= self.cuts.min_y)
            & (y < self.cuts.max_y)
            & (n_jets >= self.cuts.min_jets)
        )
        return micro_dst.select(mask)

    def _fill_histograms(self, selected: MicroDST) -> HistogramSet:
        """Fill the control distributions of the analysis."""
        histograms = HistogramSet()
        q2_hist = Histogram1D("q2", 40, self.cuts.min_q2, self.cuts.max_q2, log_bins=True)
        x_hist = Histogram1D("x", 40, 1e-5, 1.0, log_bins=True)
        y_hist = Histogram1D("y", 20, 0.0, 1.0)
        mult_hist = Histogram1D("charged_multiplicity", 30, 0.0, 60.0)
        jet_pt_hist = Histogram1D("leading_jet_pt", 30, 0.0, 60.0)
        et_hist = Histogram1D("transverse_energy", 40, 0.0, 200.0)
        if len(selected) > 0:
            weights = selected.column("weight")
            q2_hist.fill_many(
                self.numeric_context.perturb_array(selected.column("q2"), "hist:q2"),
                weights,
            )
            x_hist.fill_many(selected.column("x"), weights)
            y_hist.fill_many(selected.column("y"), weights)
            mult_hist.fill_many(selected.column("charged_multiplicity"), weights)
            jet_pt_hist.fill_many(selected.column("leading_jet_pt"), weights)
            et_hist.fill_many(
                self.numeric_context.perturb_array(
                    selected.column("transverse_energy"), "hist:et"
                ),
                weights,
            )
        for histogram in (q2_hist, x_hist, y_hist, mult_hist, jet_pt_hist, et_hist):
            histograms.add(histogram)
        return histograms

    def _measure_cross_section(self, selected: MicroDST) -> List[CrossSectionPoint]:
        """Single-differential cross section dσ/dQ² from the selected events."""
        points: List[CrossSectionPoint] = []
        if len(selected) > 0:
            q2 = selected.column("q2")
            weights = selected.column("weight")
        else:
            q2 = np.array([])
            weights = np.array([])
        for low, high in zip(self.q2_bins[:-1], self.q2_bins[1:]):
            if len(q2) > 0:
                mask = (q2 >= low) & (q2 < high)
                yield_in_bin = float(weights[mask].sum())
            else:
                yield_in_bin = 0.0
            width = high - low
            cross_section = yield_in_bin / (self.luminosity_pb * width)
            error = math.sqrt(max(yield_in_bin, 0.0)) / (self.luminosity_pb * width)
            cross_section = self.numeric_context.perturb_scalar(
                cross_section, f"xsec:{low}:{high}"
            )
            points.append(
                CrossSectionPoint(
                    q2_low=low,
                    q2_high=high,
                    n_events=yield_in_bin,
                    cross_section_pb=cross_section,
                    statistical_error_pb=error,
                )
            )
        return points

    def _summarise(
        self,
        selected: MicroDST,
        cross_section: List[CrossSectionPoint],
        n_input: int,
    ) -> Dict[str, float]:
        """Numeric summary compared between validation runs."""
        total_xsec = sum(
            point.cross_section_pb * (point.q2_high - point.q2_low)
            for point in cross_section
        )
        summary = {
            "n_input_events": float(n_input),
            "n_selected_events": float(len(selected)),
            "selection_efficiency": (len(selected) / n_input) if n_input else 0.0,
            "total_cross_section_pb": total_xsec,
        }
        if len(selected) > 0:
            summary["mean_q2"] = float(selected.column("q2").mean())
            summary["mean_multiplicity"] = float(
                selected.column("charged_multiplicity").mean()
            )
            summary["mean_jet_pt"] = float(selected.column("leading_jet_pt").mean())
        else:
            summary["mean_q2"] = 0.0
            summary["mean_multiplicity"] = 0.0
            summary["mean_jet_pt"] = 0.0
        return summary


def compare_cross_sections(
    reference: Sequence[CrossSectionPoint],
    candidate: Sequence[CrossSectionPoint],
    n_sigma: float = 3.0,
) -> Tuple[bool, List[str]]:
    """Compare two cross-section measurements bin by bin.

    Returns a (compatible, messages) pair; bins differing by more than
    ``n_sigma`` combined standard deviations are reported.
    """
    if len(reference) != len(candidate):
        return False, ["different number of cross-section bins"]
    messages: List[str] = []
    for ref_point, cand_point in zip(reference, candidate):
        if not math.isclose(ref_point.q2_low, cand_point.q2_low) or not math.isclose(
            ref_point.q2_high, cand_point.q2_high
        ):
            messages.append(
                f"bin edges differ: [{ref_point.q2_low}, {ref_point.q2_high}) vs "
                f"[{cand_point.q2_low}, {cand_point.q2_high})"
            )
            continue
        combined_error = math.hypot(
            ref_point.statistical_error_pb, cand_point.statistical_error_pb
        )
        difference = abs(ref_point.cross_section_pb - cand_point.cross_section_pb)
        if combined_error == 0.0:
            if difference > 0.0:
                messages.append(
                    f"bin [{ref_point.q2_low}, {ref_point.q2_high}): values differ "
                    "with zero statistical error"
                )
            continue
        if difference > n_sigma * combined_error:
            messages.append(
                f"bin [{ref_point.q2_low}, {ref_point.q2_high}): "
                f"{difference / combined_error:.1f} sigma deviation"
            )
    return not messages, messages


__all__ = [
    "SelectionCuts",
    "CrossSectionPoint",
    "AnalysisResult",
    "PhysicsAnalysis",
    "compare_cross_sections",
    "DEFAULT_Q2_BINS",
]
