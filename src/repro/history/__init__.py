"""Validation history: the longitudinal ledger over every validation cell.

The paper's promise is that *regular* validation "automatically detects
problems introduced into the system" as the computing environment evolves —
which requires remembering more than the latest campaign summary.  This
package is that memory: the :class:`~repro.history.ledger.ValidationHistoryLedger`
ingests every completed validation cell (and every recorded environment
evolution event) into an append-only journal in the ``history`` namespace of
the common sp-system storage, rebuilds its secondary indexes when mounted on
a restored storage, and answers the longitudinal questions the single-run
reports cannot: how an experiment's health trends across campaigns
(:mod:`~repro.history.trends`), which matrix cells flipped between two
campaigns (:func:`~repro.history.trends.diff_campaigns`), and which cells
regressed, turned flaky or never validated — with the first-bad timestamp
correlated against the recorded evolution events to name the suspected
change (:mod:`~repro.history.regressions`).
"""

from repro.history.ledger import (
    EvolutionRecord,
    ValidationEvent,
    ValidationHistoryLedger,
)
from repro.history.regressions import (
    CLASS_FLAKY,
    CLASS_HEALTHY,
    CLASS_NEVER_VALIDATED,
    CLASS_REGRESSED,
    RegressionDetector,
    RegressionFinding,
    regression_rows,
)
from repro.history.trends import (
    CellFlip,
    MatrixDiff,
    TrendPoint,
    campaign_matrix,
    diff_campaigns,
    diff_rows,
    health_trends,
    trend_rows,
)

__all__ = [
    "CLASS_FLAKY",
    "CLASS_HEALTHY",
    "CLASS_NEVER_VALIDATED",
    "CLASS_REGRESSED",
    "CellFlip",
    "EvolutionRecord",
    "MatrixDiff",
    "RegressionDetector",
    "RegressionFinding",
    "TrendPoint",
    "ValidationEvent",
    "ValidationHistoryLedger",
    "campaign_matrix",
    "diff_campaigns",
    "diff_rows",
    "health_trends",
    "regression_rows",
    "trend_rows",
]
