"""Longitudinal trend queries over the validation history ledger.

Two questions the single-campaign reports cannot answer:

* *How is an experiment's health developing?* — :func:`health_trends`
  aggregates every campaign on the ledger into one
  :class:`TrendPoint` per (experiment, campaign): how many cells ran, how
  many validated, the pass fraction.
* *What changed between two campaigns?* — :func:`diff_campaigns` compares
  the matrix state of any two campaigns cell by cell and names the flips:
  validated→broken, broken→validated, appeared, disappeared.

Both work on plain :class:`~repro.history.ledger.ValidationEvent` data, so
they answer identically for a live ledger and for one mounted from a
persisted storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro._common import StorageError
from repro.history.ledger import ValidationEvent, ValidationHistoryLedger


@dataclass(frozen=True)
class TrendPoint:
    """One experiment's aggregate health in one campaign."""

    experiment: str
    campaign_id: str
    #: Timestamp of the campaign's earliest event (the trend's time axis).
    logical_timestamp: int
    n_cells: int
    n_validated: int
    n_broken: int

    @property
    def pass_fraction(self) -> float:
        """Fraction of the campaign's cells that validated completely."""
        return self.n_validated / self.n_cells if self.n_cells else 0.0

    @property
    def healthy(self) -> bool:
        """True when every cell of the campaign validated."""
        return self.n_cells > 0 and self.n_validated == self.n_cells


def health_trends(
    ledger: ValidationHistoryLedger, experiment: Optional[str] = None
) -> Dict[str, List[TrendPoint]]:
    """Per-experiment health across campaigns, in campaign order.

    Each campaign contributes one :class:`TrendPoint` per experiment it
    validated; a cell validated several times within one campaign (rounds)
    counts by its *latest* event, matching :func:`campaign_matrix`.
    """
    trends: Dict[str, List[TrendPoint]] = {}
    for campaign_id in ledger.campaign_ids():
        per_experiment: Dict[str, Dict[Tuple[str, str], ValidationEvent]] = {}
        first_timestamp: Dict[str, int] = {}
        for event in ledger.events_for_campaign(campaign_id):
            if experiment is not None and event.experiment != experiment:
                continue
            cells = per_experiment.setdefault(event.experiment, {})
            cells[event.cell] = event  # events are time-ordered: latest wins
            first_timestamp.setdefault(event.experiment, event.logical_timestamp)
        for name in sorted(per_experiment):
            cells = per_experiment[name]
            validated = sum(1 for event in cells.values() if event.passed)
            trends.setdefault(name, []).append(
                TrendPoint(
                    experiment=name,
                    campaign_id=campaign_id,
                    logical_timestamp=first_timestamp[name],
                    n_cells=len(cells),
                    n_validated=validated,
                    n_broken=len(cells) - validated,
                )
            )
    return trends


def campaign_matrix(
    ledger: ValidationHistoryLedger, campaign_id: str
) -> Dict[Tuple[str, str], ValidationEvent]:
    """The final matrix state of one campaign: latest event per cell.

    Raises :class:`~repro._common.StorageError` for a campaign the ledger
    never saw — a typo'd ID must not silently diff against nothing.
    """
    events = ledger.events_for_campaign(campaign_id)
    if not events:
        known = ", ".join(ledger.campaign_ids()) or "none"
        raise StorageError(
            f"no events for campaign {campaign_id!r} on the history ledger "
            f"(known campaigns: {known})"
        )
    matrix: Dict[Tuple[str, str], ValidationEvent] = {}
    for event in events:  # time-ordered: the latest round wins
        matrix[event.cell] = event
    return matrix


@dataclass(frozen=True)
class CellFlip:
    """One matrix cell whose status differs between two campaigns."""

    experiment: str
    configuration_key: str
    status_from: Optional[str]
    status_to: Optional[str]

    @property
    def broke(self) -> bool:
        """True for a validated→broken flip (the regression direction)."""
        return self.status_from == "passed" and self.status_to not in (None, "passed")

    @property
    def fixed(self) -> bool:
        """True for a broken→validated flip."""
        return self.status_from not in (None, "passed") and self.status_to == "passed"

    def describe(self) -> str:
        """One-line rendering for reports."""
        return (
            f"{self.experiment} on {self.configuration_key}: "
            f"{self.status_from or 'absent'} -> {self.status_to or 'absent'}"
        )


@dataclass
class MatrixDiff:
    """Cell-by-cell comparison of two campaigns' final matrix states."""

    campaign_from: str
    campaign_to: str
    flipped: List[CellFlip]
    appeared: List[CellFlip]
    disappeared: List[CellFlip]
    unchanged: int

    @property
    def broke(self) -> List[CellFlip]:
        """The validated→broken flips, sorted by cell."""
        return [flip for flip in self.flipped if flip.broke]

    @property
    def fixed(self) -> List[CellFlip]:
        """The broken→validated flips, sorted by cell."""
        return [flip for flip in self.flipped if flip.fixed]

    def summary(self) -> str:
        """One-line summary for logs and CLI output."""
        return (
            f"{self.campaign_from} -> {self.campaign_to}: "
            f"{len(self.flipped)} flipped cell(s) ({len(self.broke)} broke, "
            f"{len(self.fixed)} fixed), {len(self.appeared)} appeared, "
            f"{len(self.disappeared)} disappeared, {self.unchanged} unchanged"
        )


def diff_campaigns(
    ledger: ValidationHistoryLedger, campaign_from: str, campaign_to: str
) -> MatrixDiff:
    """Diff the final matrix states of two campaigns on the ledger."""
    matrix_from = campaign_matrix(ledger, campaign_from)
    matrix_to = campaign_matrix(ledger, campaign_to)
    flipped: List[CellFlip] = []
    appeared: List[CellFlip] = []
    disappeared: List[CellFlip] = []
    unchanged = 0
    for cell in sorted(set(matrix_from) | set(matrix_to)):
        experiment, configuration_key = cell
        event_from = matrix_from.get(cell)
        event_to = matrix_to.get(cell)
        flip = CellFlip(
            experiment=experiment,
            configuration_key=configuration_key,
            status_from=event_from.status if event_from else None,
            status_to=event_to.status if event_to else None,
        )
        if event_from is None:
            appeared.append(flip)
        elif event_to is None:
            disappeared.append(flip)
        elif event_from.status != event_to.status:
            flipped.append(flip)
        else:
            unchanged += 1
    return MatrixDiff(
        campaign_from=campaign_from,
        campaign_to=campaign_to,
        flipped=flipped,
        appeared=appeared,
        disappeared=disappeared,
        unchanged=unchanged,
    )


# -- plain-data rows for the reporting layer and the CLI ----------------------
def trend_rows(
    ledger: ValidationHistoryLedger, experiment: Optional[str] = None
) -> List[Dict[str, object]]:
    """Flatten :func:`health_trends` into report/CLI table rows."""
    rows: List[Dict[str, object]] = []
    trends = health_trends(ledger, experiment)
    for name in sorted(trends):
        for point in trends[name]:
            rows.append(
                {
                    "experiment": point.experiment,
                    "campaign": point.campaign_id,
                    "timestamp": point.logical_timestamp,
                    "cells": point.n_cells,
                    "validated": point.n_validated,
                    "broken": point.n_broken,
                    "pass_fraction": f"{point.pass_fraction:.0%}",
                }
            )
    return rows


def diff_rows(diff: MatrixDiff) -> List[Dict[str, object]]:
    """Flatten a :class:`MatrixDiff` into report/CLI table rows."""
    rows: List[Dict[str, object]] = []
    for change, flips in (
        ("flipped", diff.flipped),
        ("appeared", diff.appeared),
        ("disappeared", diff.disappeared),
    ):
        for flip in flips:
            rows.append(
                {
                    "experiment": flip.experiment,
                    "configuration": flip.configuration_key,
                    "change": change,
                    "from": flip.status_from or "absent",
                    "to": flip.status_to or "absent",
                }
            )
    return rows


__all__ = [
    "CellFlip",
    "MatrixDiff",
    "TrendPoint",
    "campaign_matrix",
    "diff_campaigns",
    "diff_rows",
    "health_trends",
    "trend_rows",
]
