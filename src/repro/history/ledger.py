"""The validation history ledger: an append-only record of every cell.

Every completed validation cell becomes one immutable
:class:`ValidationEvent` — experiment, configuration key *and* content
fingerprint, outcome counts, a digest of the failure diagnostics, the cache
provenance and execution backend of the campaign that produced it, and the
logical (simulated-clock) timestamp.  Environment changes are recorded
alongside as :class:`EvolutionRecord` entries, so regression queries can
correlate a cell's first-bad timestamp with the OS/compiler/external-release
event that most plausibly caused it.

Both kinds of record live in an
:class:`~repro.storage.common_storage.AppendOnlyJournal` inside the
``history`` namespace of the common sp-system storage — the namespace is
registered as journal-backed, so ``CommonStorage.persist`` batches the
records into on-disk segment files and mirrors compactions.  Mounting a
:class:`ValidationHistoryLedger` on a restored storage replays the journal
and rebuilds the secondary indexes (by run, by campaign, by cell); ingestion
is idempotent by record identity (run ID for validations, year/kind/subject
for evolution events), so a warm-started installation re-ingesting the same
cells never duplicates history.

All writes into the ``history`` namespace MUST go through this ledger —
``scripts/ci.sh`` audits that no other module issues a raw ``put`` into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro._common import StorageError, stable_digest
from repro.core.jobs import JobStatus
from repro.environment.configuration import (
    EnvironmentConfiguration,
    configuration_fingerprint,
)
from repro.environment.evolution import EnvironmentEvent
from repro.storage.common_storage import (
    AppendOnlyJournal,
    CommonStorage,
    register_journal_namespace,
)


@dataclass(frozen=True)
class ValidationEvent:
    """One validated (or failed) matrix cell, as the ledger remembers it."""

    run_id: str
    campaign_id: str
    experiment: str
    configuration_key: str
    #: Content fingerprint of the configuration at validation time; an
    #: in-place environment change (same key, new compiler/external) shows
    #: up as a fingerprint flip between two events of the same cell.
    configuration_fingerprint: str
    status: str
    n_passed: int
    n_failed: int
    n_skipped: int
    failed_tests: Tuple[str, ...]
    #: Content digest of the failure evidence (failing jobs, their messages
    #: and the diagnosis categories) — two events with equal digests broke
    #: the same way.
    diagnostics_digest: str
    #: How the producing campaign's build phase was served: ``uncached``
    #: (cache layer disabled), ``cold`` (no hits) or ``warm`` (cache hits).
    cache_provenance: str
    backend: str
    #: Simulated-clock timestamp of the run (the ledger's time axis).
    logical_timestamp: int
    description: str = ""

    @property
    def passed(self) -> bool:
        """True when the cell validated completely."""
        return self.status == "passed"

    @property
    def cell(self) -> Tuple[str, str]:
        """The matrix coordinates the event belongs to."""
        return (self.experiment, self.configuration_key)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view; :meth:`from_dict` round-trips it."""
        return {
            "run_id": self.run_id,
            "campaign_id": self.campaign_id,
            "experiment": self.experiment,
            "configuration_key": self.configuration_key,
            "configuration_fingerprint": self.configuration_fingerprint,
            "status": self.status,
            "n_passed": self.n_passed,
            "n_failed": self.n_failed,
            "n_skipped": self.n_skipped,
            "failed_tests": list(self.failed_tests),
            "diagnostics_digest": self.diagnostics_digest,
            "cache_provenance": self.cache_provenance,
            "backend": self.backend,
            "logical_timestamp": self.logical_timestamp,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ValidationEvent":
        """Reconstruct an event serialised by :meth:`to_dict`."""
        return cls(
            run_id=str(payload["run_id"]),
            campaign_id=str(payload["campaign_id"]),
            experiment=str(payload["experiment"]),
            configuration_key=str(payload["configuration_key"]),
            configuration_fingerprint=str(payload["configuration_fingerprint"]),
            status=str(payload["status"]),
            n_passed=int(payload["n_passed"]),  # type: ignore[arg-type]
            n_failed=int(payload["n_failed"]),  # type: ignore[arg-type]
            n_skipped=int(payload["n_skipped"]),  # type: ignore[arg-type]
            failed_tests=tuple(
                str(name) for name in payload.get("failed_tests", [])  # type: ignore[union-attr]
            ),
            diagnostics_digest=str(payload.get("diagnostics_digest", "")),
            cache_provenance=str(payload.get("cache_provenance", "")),
            backend=str(payload.get("backend", "")),
            logical_timestamp=int(payload["logical_timestamp"]),  # type: ignore[arg-type]
            description=str(payload.get("description", "")),
        )


@dataclass(frozen=True)
class EvolutionRecord:
    """An environment evolution event stamped onto the ledger's time axis."""

    year: int
    kind: str
    subject: str
    detail: str
    logical_timestamp: int

    @property
    def identity(self) -> Tuple[int, str, str]:
        """The dedup identity: re-recording the same event is a no-op."""
        return (self.year, self.kind, self.subject)

    @property
    def label(self) -> str:
        """Short human-readable name used in regression attributions."""
        return f"[{self.kind}] {self.subject} ({self.year})"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view; :meth:`from_dict` round-trips it."""
        return {
            "year": self.year,
            "kind": self.kind,
            "subject": self.subject,
            "detail": self.detail,
            "logical_timestamp": self.logical_timestamp,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EvolutionRecord":
        """Reconstruct a record serialised by :meth:`to_dict`."""
        return cls(
            year=int(payload["year"]),  # type: ignore[arg-type]
            kind=str(payload["kind"]),
            subject=str(payload["subject"]),
            detail=str(payload.get("detail", "")),
            logical_timestamp=int(payload["logical_timestamp"]),  # type: ignore[arg-type]
        )


def diagnostics_digest(run, diagnosis=None) -> str:
    """Content digest of a run's failure evidence.

    Combines every non-passing job (name, status, messages) with the
    diagnosis category counts, so two events with equal digests failed the
    same way — the flake-triage signal.  A fully passing run digests to the
    empty string.
    """
    evidence = [
        [job.test_name, job.status.value, list(job.messages)]
        for job in run.jobs
        if job.status is not JobStatus.PASSED
    ]
    if not evidence:
        return ""
    categories = sorted(diagnosis.by_category().items()) if diagnosis else []
    return stable_digest("diagnostics", evidence, categories)


class ValidationHistoryLedger:
    """Append-only, idempotent history of validation cells and evolutions."""

    #: Record keys inside the namespace are ``journal_<sequence>``.
    JOURNAL_PREFIX = "journal_"

    #: Common-storage namespace holding the ledger journal.  Registered as
    #: journal-backed: persisted as batched segment files, with mirror
    #: semantics on disk.
    NAMESPACE = register_journal_namespace("history", JOURNAL_PREFIX)

    def __init__(self, storage: CommonStorage) -> None:
        self.storage = storage
        self._namespace = storage.create_namespace(self.NAMESPACE)
        self._journal = AppendOnlyJournal(self._namespace, self.JOURNAL_PREFIX)
        self._events: List[ValidationEvent] = []
        self._evolutions: List[EvolutionRecord] = []
        self._by_run: Dict[str, ValidationEvent] = {}
        self._evolution_identities: Set[Tuple[int, str, str]] = set()
        #: Journal records that could not be decoded on the last rebuild.
        self.corrupted_records = 0
        self._rebuild()

    # -- mounting --------------------------------------------------------------
    @classmethod
    def exists_in(cls, storage: CommonStorage) -> bool:
        """True when *storage* carries a history ledger namespace."""
        return cls.NAMESPACE in storage.namespaces()

    @classmethod
    def open(cls, storage: CommonStorage) -> "ValidationHistoryLedger":
        """Mount the ledger of *storage*; fail clearly when there is none.

        This is the read-path entry (the ``history`` CLI commands): unlike
        the constructor it never creates the namespace, so querying a
        storage that never recorded history is a
        :class:`~repro._common.StorageError`, not an empty answer.
        """
        if not cls.exists_in(storage):
            raise StorageError(
                "no validation history ledger: the storage has no "
                f"{cls.NAMESPACE!r} namespace (run campaigns with "
                "record_history enabled to start one)"
            )
        return cls(storage)

    def _rebuild(self) -> None:
        """Replay the journal and rebuild every secondary index.

        Corrupted records are skipped and counted — losing one event must
        not take the rest of the history with it.  Duplicate identities
        (possible only through a hand-edited journal) keep the first
        occurrence, matching the ingest-time idempotence rule.
        """
        self._events = []
        self._evolutions = []
        self._by_run = {}
        self._evolution_identities = set()
        self.corrupted_records = 0
        for _sequence, document in self._journal.records():
            record = self._parse_record(document)
            if record is None:
                self.corrupted_records += 1
                continue
            if isinstance(record, ValidationEvent):
                if record.run_id in self._by_run:
                    continue
                self._events.append(record)
                self._by_run[record.run_id] = record
            else:
                if record.identity in self._evolution_identities:
                    continue
                self._evolutions.append(record)
                self._evolution_identities.add(record.identity)

    @staticmethod
    def _parse_record(document: object):
        """Decode one journal record, or None if it is corrupted."""
        if not isinstance(document, dict):
            return None
        try:
            kind = document["type"]
            if kind == "validation":
                return ValidationEvent.from_dict(document["event"])
            if kind == "evolution":
                return EvolutionRecord.from_dict(document["event"])
        except (KeyError, TypeError, ValueError, AttributeError):
            return None
        return None

    # -- ingestion -------------------------------------------------------------
    def record_validation(self, event: ValidationEvent) -> bool:
        """Append *event* unless its run is already on the ledger.

        Returns True when the event was appended — idempotence is keyed on
        the run ID, which is unique across installations (the job-ID
        allocator resumes past inherited runs), so re-submitting a restored
        storage's cells on warm-start never duplicates history.
        """
        if event.run_id in self._by_run:
            return False
        self._journal.append({"type": "validation", "event": event.to_dict()})
        self._events.append(event)
        self._by_run[event.run_id] = event
        return True

    def ingest_cycle(
        self,
        cycle,
        configuration: EnvironmentConfiguration,
        campaign_id: str,
        backend: str,
        cache_provenance: str,
    ) -> Optional[ValidationEvent]:
        """Ingest one completed validation cycle as a :class:`ValidationEvent`.

        *cycle* is duck-typed (the system's ``ValidationCycleResult``): it
        needs ``run`` and optionally ``diagnosis``.  Returns the appended
        event, or None when the run was already on the ledger.
        """
        run = cycle.run
        event = ValidationEvent(
            run_id=run.run_id,
            campaign_id=campaign_id,
            experiment=run.experiment,
            configuration_key=run.configuration_key,
            configuration_fingerprint=configuration_fingerprint(configuration),
            status=run.overall_status,
            n_passed=run.n_passed,
            n_failed=run.n_failed,
            n_skipped=run.n_skipped,
            failed_tests=tuple(
                sorted(job.test_name for job in run.failed_jobs())
            ),
            diagnostics_digest=diagnostics_digest(
                run, getattr(cycle, "diagnosis", None)
            ),
            cache_provenance=cache_provenance,
            backend=backend,
            logical_timestamp=run.started_at,
            description=run.description,
        )
        return event if self.record_validation(event) else None

    def record_evolution(
        self, event: EnvironmentEvent, logical_timestamp: int
    ) -> Optional[EvolutionRecord]:
        """Stamp an environment evolution event onto the ledger's time axis.

        Returns the appended :class:`EvolutionRecord`, or None when the
        same (year, kind, subject) was already recorded.
        """
        record = EvolutionRecord(
            year=event.year,
            kind=event.kind,
            subject=event.subject,
            detail=event.detail,
            logical_timestamp=int(logical_timestamp),
        )
        if record.identity in self._evolution_identities:
            return None
        self._journal.append({"type": "evolution", "event": record.to_dict()})
        self._evolutions.append(record)
        self._evolution_identities.add(record.identity)
        return record

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[ValidationEvent]:
        """Every validation event, ordered by (timestamp, run ID)."""
        return sorted(
            self._events, key=lambda event: (event.logical_timestamp, event.run_id)
        )

    def evolution_records(self) -> List[EvolutionRecord]:
        """Every evolution record, ordered by timestamp then identity."""
        return sorted(
            self._evolutions,
            key=lambda record: (record.logical_timestamp, record.identity),
        )

    def has_run(self, run_id: str) -> bool:
        """True when the run is already on the ledger."""
        return run_id in self._by_run

    def campaign_ids(self) -> List[str]:
        """Campaign IDs in order of their earliest event."""
        first_seen: Dict[str, Tuple[int, str]] = {}
        for event in self._events:
            marker = (event.logical_timestamp, event.run_id)
            if event.campaign_id not in first_seen or marker < first_seen[event.campaign_id]:
                first_seen[event.campaign_id] = marker
        return sorted(first_seen, key=lambda campaign_id: first_seen[campaign_id])

    def events_for_campaign(self, campaign_id: str) -> List[ValidationEvent]:
        """The events one campaign ingested, in (timestamp, run) order."""
        return [
            event for event in self.events() if event.campaign_id == campaign_id
        ]

    def events_for_experiment(self, experiment: str) -> List[ValidationEvent]:
        """One experiment's events across all campaigns, oldest first."""
        return [event for event in self.events() if event.experiment == experiment]

    def cells(self) -> List[Tuple[str, str]]:
        """Every (experiment, configuration key) cell ever recorded, sorted."""
        return sorted({event.cell for event in self._events})

    def cell_timeline(
        self, experiment: str, configuration_key: str
    ) -> List[ValidationEvent]:
        """One cell's events across the whole history, oldest first."""
        return [
            event
            for event in self.events()
            if event.cell == (experiment, configuration_key)
        ]

    def journal_records(self) -> int:
        """Number of records in the underlying journal (events + evolutions)."""
        return len(self._journal)

    def status(self) -> Dict[str, int]:
        """Headline counts for reports and the ``history`` CLI."""
        return {
            "events": len(self._events),
            "evolutions": len(self._evolutions),
            "campaigns": len(self.campaign_ids()),
            "cells": len(self.cells()),
            "corrupted_records": self.corrupted_records,
        }


__all__ = [
    "EvolutionRecord",
    "ValidationEvent",
    "ValidationHistoryLedger",
    "diagnostics_digest",
]
