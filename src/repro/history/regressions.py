"""Regression detection over the validation history ledger.

Where :class:`repro.core.regression.RegressionDetector` compares one run
against its last successful predecessor, this module's
:class:`RegressionDetector` looks at each matrix cell's *entire* timeline on
the ledger and classifies the transition pattern:

* ``regressed`` — the cell validated in the past and its latest event is
  broken (the validated→broken transition the paper's regular validation
  exists to catch);
* ``flaky`` — the cell's status flipped back and forth at least twice and
  it currently passes (a reliability problem, not a hard regression);
* ``never-validated`` — the cell has never passed at all;
* ``healthy`` — everything else (all green, or a fixed former failure).

For a regression, the detector pins the last-good and first-bad events and
correlates the first-bad timestamp with the ledger's recorded
environment-evolution events: the most recent evolution inside the
(last-good, first-bad] window is named as the suspected change.  A
configuration-fingerprint flip between last-good and first-bad independently
confirms that the environment — not the experiment software — moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.history.ledger import (
    EvolutionRecord,
    ValidationEvent,
    ValidationHistoryLedger,
)

CLASS_REGRESSED = "regressed"
CLASS_FLAKY = "flaky"
CLASS_NEVER_VALIDATED = "never-validated"
CLASS_HEALTHY = "healthy"


@dataclass(frozen=True)
class RegressionFinding:
    """The classification of one matrix cell's history."""

    experiment: str
    configuration_key: str
    classification: str
    n_events: int
    #: Number of pass/fail direction changes across the timeline.
    n_flips: int
    current_status: str
    last_good: Optional[ValidationEvent] = None
    first_bad: Optional[ValidationEvent] = None
    #: The evolution event most plausibly responsible for a regression.
    suspected_event: Optional[EvolutionRecord] = None
    #: True when the configuration's content fingerprint changed between
    #: the last-good and first-bad events — direct evidence the environment
    #: moved underneath the cell.
    fingerprint_changed: bool = False

    @property
    def is_regression(self) -> bool:
        """True for a validated→broken cell."""
        return self.classification == CLASS_REGRESSED

    def summary(self) -> str:
        """One-line rendering for reports and the CLI."""
        text = (
            f"{self.experiment} on {self.configuration_key}: "
            f"{self.classification} ({self.n_events} event(s), "
            f"{self.n_flips} flip(s))"
        )
        if self.is_regression and self.first_bad is not None:
            text += f"; first bad run {self.first_bad.run_id}"
            if self.suspected_event is not None:
                text += f", suspected change: {self.suspected_event.label}"
            if self.fingerprint_changed:
                text += " [configuration fingerprint changed]"
        return text


class RegressionDetector:
    """Classifies every cell timeline on a history ledger."""

    def __init__(self, ledger: ValidationHistoryLedger) -> None:
        self.ledger = ledger

    def findings(self) -> List[RegressionFinding]:
        """One finding per recorded cell, sorted by cell coordinates."""
        return [
            self._classify(experiment, configuration_key)
            for experiment, configuration_key in self.ledger.cells()
        ]

    def regressions(self) -> List[RegressionFinding]:
        """Only the validated→broken cells."""
        return [finding for finding in self.findings() if finding.is_regression]

    def flaky_cells(self) -> List[RegressionFinding]:
        """Only the cells classified flaky."""
        return [
            finding
            for finding in self.findings()
            if finding.classification == CLASS_FLAKY
        ]

    def never_validated(self) -> List[RegressionFinding]:
        """Only the cells that never passed."""
        return [
            finding
            for finding in self.findings()
            if finding.classification == CLASS_NEVER_VALIDATED
        ]

    # -- classification --------------------------------------------------------
    def _classify(
        self, experiment: str, configuration_key: str
    ) -> RegressionFinding:
        timeline = self.ledger.cell_timeline(experiment, configuration_key)
        flips = sum(
            1
            for previous, current in zip(timeline, timeline[1:])
            if previous.passed != current.passed
        )
        ever_passed = any(event.passed for event in timeline)
        current = timeline[-1]
        if not ever_passed:
            classification = CLASS_NEVER_VALIDATED
        elif not current.passed:
            classification = CLASS_REGRESSED
        elif flips >= 2:
            classification = CLASS_FLAKY
        else:
            classification = CLASS_HEALTHY
        last_good: Optional[ValidationEvent] = None
        first_bad: Optional[ValidationEvent] = None
        suspected: Optional[EvolutionRecord] = None
        fingerprint_changed = False
        if classification == CLASS_REGRESSED:
            for index in range(len(timeline) - 1, -1, -1):
                if timeline[index].passed:
                    last_good = timeline[index]
                    first_bad = timeline[index + 1]
                    break
            if last_good is not None and first_bad is not None:
                suspected = self._suspected_evolution(last_good, first_bad)
                fingerprint_changed = (
                    last_good.configuration_fingerprint
                    != first_bad.configuration_fingerprint
                )
        return RegressionFinding(
            experiment=experiment,
            configuration_key=configuration_key,
            classification=classification,
            n_events=len(timeline),
            n_flips=flips,
            current_status=current.status,
            last_good=last_good,
            first_bad=first_bad,
            suspected_event=suspected,
            fingerprint_changed=fingerprint_changed,
        )

    def _suspected_evolution(
        self, last_good: ValidationEvent, first_bad: ValidationEvent
    ) -> Optional[EvolutionRecord]:
        """The most recent evolution inside the (last-good, first-bad] window."""
        suspected: Optional[EvolutionRecord] = None
        for record in self.ledger.evolution_records():
            if (
                last_good.logical_timestamp
                < record.logical_timestamp
                <= first_bad.logical_timestamp
            ):
                suspected = record  # records are time-ordered: latest wins
        return suspected


def regression_rows(findings: List[RegressionFinding]) -> List[Dict[str, object]]:
    """Flatten findings into report/CLI table rows (regressions first)."""
    order = {
        CLASS_REGRESSED: 0,
        CLASS_FLAKY: 1,
        CLASS_NEVER_VALIDATED: 2,
        CLASS_HEALTHY: 3,
    }
    rows: List[Dict[str, object]] = []
    for finding in sorted(
        findings,
        key=lambda finding: (
            order.get(finding.classification, 9),
            finding.experiment,
            finding.configuration_key,
        ),
    ):
        rows.append(
            {
                "experiment": finding.experiment,
                "configuration": finding.configuration_key,
                "classification": finding.classification,
                "events": finding.n_events,
                "flips": finding.n_flips,
                "first_bad": (
                    finding.first_bad.run_id if finding.first_bad else "-"
                ),
                "suspected_change": (
                    finding.suspected_event.label
                    if finding.suspected_event
                    else "-"
                ),
            }
        )
    return rows


def regression_event_payload(finding: RegressionFinding) -> Dict[str, object]:
    """JSON-safe lifecycle-event payload describing one regression finding.

    This is the ``regression_detected`` event body the alerting plugin
    emits: scalars only, so the JSONL event sink and the status pages can
    serialise it without knowing the finding types.
    """
    return {
        "experiment": finding.experiment,
        "configuration_key": finding.configuration_key,
        "classification": finding.classification,
        "n_events": finding.n_events,
        "n_flips": finding.n_flips,
        "current_status": finding.current_status,
        "last_good_run": finding.last_good.run_id if finding.last_good else None,
        "first_bad_run": finding.first_bad.run_id if finding.first_bad else None,
        "suspected_change": (
            finding.suspected_event.label if finding.suspected_event else None
        ),
        "fingerprint_changed": finding.fingerprint_changed,
        "summary": finding.summary(),
    }


__all__ = [
    "CLASS_FLAKY",
    "CLASS_HEALTHY",
    "CLASS_NEVER_VALIDATED",
    "CLASS_REGRESSED",
    "RegressionDetector",
    "RegressionFinding",
    "regression_event_payload",
    "regression_rows",
]
