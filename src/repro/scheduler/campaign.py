"""The campaign scheduler: a validation matrix run as one planned campaign.

:class:`CampaignScheduler` expands (experiments x configurations x rounds)
into the ordered list of matrix cells, executes every cell through the
owning :class:`~repro.core.spsystem.SPSystem` with the content-hash build
cache layered over the package builder, then derives the campaign job DAG
from the executed runs and simulates its dispatch over the worker pool.

Cell execution deliberately happens in the exact order of the sequential
path (experiments outer, configurations inner, rounds outermost), so job
IDs, simulated timestamps and therefore the produced
:class:`~repro.core.jobs.ValidationRun` documents and
:class:`~repro.storage.catalog.RunCatalog` records are bit-identical to
calling :meth:`SPSystem.validate` cell by cell — whatever the worker count.
The pool changes the campaign's wall-clock story (makespan, utilisation,
retries after worker failures), never its scientific output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro._common import SchedulingError, chunked
from repro.buildsys.graph import DependencyGraph
from repro.core.jobs import ValidationRun
from repro.core.testspec import ExperimentDefinition
from repro.reporting.summary import render_campaign_report
from repro.scheduler.cache import BuildCache, CacheStatistics, CachingPackageBuilder
from repro.scheduler.dag import CampaignDAG, CampaignTask, TaskKind
from repro.scheduler.pool import (
    PoolSchedule,
    SchedulingPolicy,
    SimulatedWorkerPool,
    WorkerFailure,
    scheduling_policy,
)
from repro.virtualization.resources import VALIDATION_VM_PROFILE, ResourceProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.spsystem import SPSystem, ValidationCycleResult

#: Default number of standalone tests grouped into one worker-slot batch.
DEFAULT_BATCH_SIZE = 4


@dataclass
class CampaignCell:
    """One executed (experiment, configuration) cell of the matrix."""

    index: int
    experiment: str
    configuration_key: str
    result: "ValidationCycleResult"

    @property
    def run(self) -> ValidationRun:
        """The validation run the cell produced."""
        return self.result.run


@dataclass
class CampaignResult:
    """Everything one scheduled validation campaign produced."""

    cells: List[CampaignCell]
    dag: CampaignDAG
    schedule: PoolSchedule
    cache_statistics: CacheStatistics
    workers: int
    batch_size: int
    rounds: int
    description: Optional[str] = None
    policy: str = "fifo"

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def runs(self) -> List[ValidationRun]:
        """All validation runs, in execution order."""
        return [cell.run for cell in self.cells]

    def cycles_for(self, experiment_name: str) -> List["ValidationCycleResult"]:
        """The cycle results of one experiment, in execution order."""
        return [
            cell.result for cell in self.cells if cell.experiment == experiment_name
        ]

    def by_experiment(self) -> Dict[str, List["ValidationCycleResult"]]:
        """Cycle results grouped by experiment, in first-execution order."""
        grouped: Dict[str, List["ValidationCycleResult"]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.experiment, []).append(cell.result)
        return grouped

    @property
    def all_passed(self) -> bool:
        """True when every cell of the campaign passed completely.

        Like :attr:`ValidationRun.all_passed`, an empty campaign does not
        count as successful — nothing was validated.
        """
        return bool(self.cells) and all(cell.result.successful for cell in self.cells)

    def render_text(self) -> str:
        """Human-readable campaign report (pool timeline plus cache numbers)."""
        return render_campaign_report(self)


class CampaignScheduler:
    """Plans and executes validation campaigns for one sp-system."""

    def __init__(
        self,
        system: "SPSystem",
        workers: int = 1,
        batch_size: int = DEFAULT_BATCH_SIZE,
        worker_profile: ResourceProfile = VALIDATION_VM_PROFILE,
        failures: Sequence[WorkerFailure] = (),
        cache: Optional[BuildCache] = None,
        policy: Union[str, SchedulingPolicy, None] = None,
        deadline_seconds: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise SchedulingError("a campaign needs at least one worker")
        if batch_size < 1:
            raise SchedulingError("standalone test batches need at least one slot")
        self.system = system
        self.workers = workers
        self.batch_size = batch_size
        self.worker_profile = worker_profile
        self.failures = tuple(failures)
        self.cache = cache if cache is not None else BuildCache(system.artifact_store)
        self.policy = scheduling_policy(policy)
        self.deadline_seconds = deadline_seconds

    # -- campaign execution ----------------------------------------------------
    def run(
        self,
        experiment_names: Optional[Iterable[str]] = None,
        configuration_keys: Optional[Iterable[str]] = None,
        description: Optional[str] = None,
        rounds: int = 1,
    ) -> CampaignResult:
        """Execute the campaign and return its result."""
        if rounds < 1:
            raise SchedulingError("a campaign needs at least one round")
        names = (
            list(experiment_names)
            if experiment_names is not None
            else [experiment.name for experiment in self.system.experiments()]
        )
        keys = (
            list(configuration_keys)
            if configuration_keys is not None
            else [configuration.key for configuration in self.system.configurations()]
        )
        spec = [
            (name, key)
            for _round in range(rounds)
            for name in names
            for key in keys
        ]
        # Account against the cache that will actually serve the campaign: a
        # caching builder already installed on the runner keeps its own cache.
        caching_builder = self._caching_builder()
        effective_cache = caching_builder.cache
        statistics_before = effective_cache.statistics.snapshot()
        cells = self._execute_cells(spec, description, caching_builder)
        dag = self._build_dag(cells)
        pool = SimulatedWorkerPool(
            self.workers,
            profile=self.worker_profile,
            failures=self.failures,
            policy=self.policy,
            deadline_seconds=self.deadline_seconds,
        )
        try:
            schedule = pool.execute(dag)
        except SchedulingError as error:
            # The deterministic validation pass has already recorded its runs;
            # only the pool simulation failed.  Say so instead of implying the
            # campaign produced nothing.
            raise SchedulingError(
                f"{error} (the {len(cells)} validation run(s) of the campaign "
                "remain recorded in the catalogue)"
            ) from error
        return CampaignResult(
            cells=cells,
            dag=dag,
            schedule=schedule,
            cache_statistics=effective_cache.statistics - statistics_before,
            workers=self.workers,
            batch_size=self.batch_size,
            rounds=rounds,
            description=description,
            policy=self.policy.name,
        )

    def _caching_builder(self) -> CachingPackageBuilder:
        """The caching builder the campaign will execute with."""
        original = self.system.runner.builder
        if isinstance(original, CachingPackageBuilder):
            return original
        return CachingPackageBuilder(self.cache, base=original)

    def _execute_cells(
        self,
        spec: Sequence[Tuple[str, str]],
        description: Optional[str],
        caching_builder: CachingPackageBuilder,
    ) -> List[CampaignCell]:
        """Run every cell in sequential order with the build cache layered in."""
        original_builder = self.system.runner.builder
        cells: List[CampaignCell] = []
        try:
            self.system.runner.builder = caching_builder
            for index, (name, key) in enumerate(spec):
                result = self.system.validate(name, key, description=description)
                cells.append(
                    CampaignCell(
                        index=index,
                        experiment=name,
                        configuration_key=key,
                        result=result,
                    )
                )
        finally:
            self.system.runner.builder = original_builder
        return cells

    # -- DAG derivation --------------------------------------------------------
    def _build_dag(self, cells: Sequence[CampaignCell]) -> CampaignDAG:
        """Derive the campaign DAG, with task durations from the executed runs."""
        dag = CampaignDAG()
        # The build order depends on the experiment only; compute it once
        # instead of once per matrix cell.
        build_orders: Dict[str, List[str]] = {}
        for cell in cells:
            experiment = self.system.experiment(cell.experiment)
            if cell.experiment not in build_orders:
                build_orders[cell.experiment] = DependencyGraph(
                    experiment.inventory
                ).build_order()
            self._add_cell_tasks(dag, cell, experiment, build_orders[cell.experiment])
        return dag

    def _add_cell_tasks(
        self,
        dag: CampaignDAG,
        cell: CampaignCell,
        experiment: ExperimentDefinition,
        build_order: Sequence[str],
    ) -> None:
        run = cell.run
        prefix = f"c{cell.index:04d}"
        build_ids: Dict[str, str] = {}
        for name in build_order:
            package = experiment.inventory.get(name)
            job = run.job_for(f"compile-{name}")
            task_id = f"{prefix}:build:{name}"
            dag.add(
                CampaignTask(
                    task_id=task_id,
                    kind=TaskKind.BUILD,
                    cell_index=cell.index,
                    experiment=cell.experiment,
                    configuration_key=cell.configuration_key,
                    duration_seconds=job.duration_seconds,
                    dependencies=tuple(
                        build_ids[dependency] for dependency in package.dependencies
                    ),
                )
            )
            build_ids[name] = task_id
        # Tests start once the cell's compilation phase is complete, exactly
        # as the validation runner sequences its phases.
        all_builds = tuple(build_ids.values())
        for batch_index, batch in enumerate(
            chunked(experiment.standalone_tests, self.batch_size)
        ):
            dag.add(
                CampaignTask(
                    task_id=f"{prefix}:standalone-batch:{batch_index:03d}",
                    kind=TaskKind.TEST_BATCH,
                    cell_index=cell.index,
                    experiment=cell.experiment,
                    configuration_key=cell.configuration_key,
                    duration_seconds=sum(
                        run.job_for(test.name).duration_seconds for test in batch
                    ),
                    dependencies=all_builds,
                    n_tests=len(batch),
                )
            )
        for chain in experiment.chains:
            previous: Optional[str] = None
            for step in chain.steps:
                task_id = f"{prefix}:chain:{step.name}"
                dag.add(
                    CampaignTask(
                        task_id=task_id,
                        kind=TaskKind.CHAIN_STEP,
                        cell_index=cell.index,
                        experiment=cell.experiment,
                        configuration_key=cell.configuration_key,
                        duration_seconds=run.job_for(step.name).duration_seconds,
                        dependencies=(previous,) if previous is not None else all_builds,
                    )
                )
                previous = task_id


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "CampaignCell",
    "CampaignResult",
    "CampaignScheduler",
]
