"""The campaign scheduler: a validation matrix run as one planned campaign.

:class:`CampaignScheduler` expands (experiments x configurations x rounds)
— or an explicit list of :class:`~repro.scheduler.spec.ValidationRequest`
cells — into the ordered list of matrix cells, executes every cell through
the owning :class:`~repro.core.spsystem.SPSystem` with the content-hash
build cache layered over the package builder, then derives the campaign job
DAG from the executed runs and hands it to the selected
:class:`~repro.scheduler.backends.ExecutionBackend` for dispatch over the
worker pool.

Cell execution deliberately happens in the exact order of the sequential
path (experiments outer, configurations inner, rounds outermost), so job
IDs, simulated timestamps and therefore the produced
:class:`~repro.core.jobs.ValidationRun` documents and
:class:`~repro.storage.catalog.RunCatalog` records are bit-identical to
calling :meth:`SPSystem.validate` cell by cell — whatever the worker count
and whichever backend.  The backend changes the campaign's wall-clock story
(makespan, utilisation, retries after worker failures — simulated or
measured on real threads), never its scientific output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro._common import SchedulingError, chunked, stable_digest
from repro.buildsys.builder import BuildTask, PackageBuilder, build_result_digest
from repro.buildsys.graph import DependencyGraph
from repro.core.jobs import JobStatus, ValidationRun
from repro.core.testspec import ExperimentDefinition
from repro.reporting.summary import render_campaign_report
from repro.scheduler.backends import (
    ExecutionBackend,
    ExecutionRequest,
    TaskPayload,
    execution_backend,
)
from repro.scheduler.cache import BuildCache, CacheStatistics, CachingPackageBuilder
from repro.scheduler.dag import CampaignDAG, CampaignTask, TaskKind
from repro.scheduler.lifecycle import (
    EVENT_BUDGET_EXCEEDED,
    EVENT_CELL_COMPLETED,
    PluginRegistry,
)
from repro.scheduler.pool import (
    PoolSchedule,
    SchedulingPolicy,
    WorkerFailure,
    scheduling_policy,
)
from repro.scheduler.spec import DEFAULT_BATCH_SIZE, CampaignSpec, ValidationRequest
from repro.telemetry import NULL_TELEMETRY
from repro.virtualization.resources import VALIDATION_VM_PROFILE, ResourceProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.spsystem import SPSystem, ValidationCycleResult

#: Callback fired after each executed matrix cell (progress reporting).
CellCallback = Callable[["CampaignCell"], None]


@dataclass
class CampaignCell:
    """One executed (experiment, configuration) cell of the matrix."""

    index: int
    experiment: str
    configuration_key: str
    result: "ValidationCycleResult"

    @property
    def run(self) -> ValidationRun:
        """The validation run the cell produced."""
        return self.result.run


@dataclass
class CampaignResult:
    """Everything one scheduled validation campaign produced."""

    cells: List[CampaignCell]
    dag: CampaignDAG
    schedule: PoolSchedule
    cache_statistics: CacheStatistics
    workers: int
    batch_size: int
    rounds: int
    description: Optional[str] = None
    policy: str = "fifo"
    backend: str = "simulated"
    #: The spec the campaign was submitted with (None for direct scheduler use).
    spec: Optional[CampaignSpec] = None
    #: Task ID -> the re-executable :class:`~repro.buildsys.builder.BuildTask`
    #: the backend was handed for that build task.  Only the build tasks are
    #: retained (they are small, and the parity tests inspect their ``runs``
    #: counters); the per-task verification closures are dropped after
    #: execution instead of living as long as the campaign result.
    payloads: Dict[str, TaskPayload] = field(default_factory=dict, repr=False)

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def runs(self) -> List[ValidationRun]:
        """All validation runs, in execution order."""
        return [cell.run for cell in self.cells]

    def cycles_for(self, experiment_name: str) -> List["ValidationCycleResult"]:
        """The cycle results of one experiment, in execution order."""
        return [
            cell.result for cell in self.cells if cell.experiment == experiment_name
        ]

    def by_experiment(self) -> Dict[str, List["ValidationCycleResult"]]:
        """Cycle results grouped by experiment, in first-execution order."""
        grouped: Dict[str, List["ValidationCycleResult"]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.experiment, []).append(cell.result)
        return grouped

    @property
    def all_passed(self) -> bool:
        """True when every cell of the campaign passed completely.

        Like :attr:`ValidationRun.all_passed`, an empty campaign does not
        count as successful — nothing was validated.
        """
        return bool(self.cells) and all(cell.result.successful for cell in self.cells)

    def render_text(self) -> str:
        """Human-readable campaign report (pool timeline plus cache numbers)."""
        return render_campaign_report(self)


class CampaignScheduler:
    """Plans and executes validation campaigns for one sp-system."""

    def __init__(
        self,
        system: "SPSystem",
        workers: int = 1,
        batch_size: int = DEFAULT_BATCH_SIZE,
        worker_profile: ResourceProfile = VALIDATION_VM_PROFILE,
        failures: Sequence[WorkerFailure] = (),
        cache: Optional[BuildCache] = None,
        policy: Union[str, SchedulingPolicy, None] = None,
        deadline_seconds: Optional[float] = None,
        backend: Union[str, ExecutionBackend, None] = None,
        cache_budget_bytes: Optional[int] = None,
        use_cache: bool = True,
        shards: Optional[int] = None,
        lifecycle: Optional[PluginRegistry] = None,
        campaign_id: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise SchedulingError("a campaign needs at least one worker")
        if batch_size < 1:
            raise SchedulingError("standalone test batches need at least one slot")
        if shards is not None and shards < 1:
            raise SchedulingError("a sharded campaign needs at least one shard")
        if cache_budget_bytes is not None and cache_budget_bytes < 0:
            raise SchedulingError("a cache size budget cannot be negative")
        if cache_budget_bytes is not None and not use_cache:
            raise SchedulingError(
                "a cache size budget needs the cache (use_cache is False)"
            )
        self.system = system
        self.workers = workers
        self.batch_size = batch_size
        self.worker_profile = worker_profile
        self.failures = tuple(failures)
        self.cache = cache if cache is not None else BuildCache(system.artifact_store)
        self.policy = scheduling_policy(policy)
        self.deadline_seconds = deadline_seconds
        self.backend = execution_backend(backend)
        #: Live in-memory budget, enforced after every campaign round (the
        #: same budget the persisted journal is compacted under).
        self.cache_budget_bytes = cache_budget_bytes
        #: ``False`` runs the cold path: no cache layered over the builder.
        self.use_cache = use_cache
        #: Shard count handed to the sharded backend (None = worker count).
        self.shards = shards
        #: Lifecycle event bus (None = no events emitted, the direct
        #: scheduler-use path) and the campaign ID events are tagged with.
        self.lifecycle = lifecycle
        self.campaign_id = campaign_id
        #: The system's telemetry bundle (the no-op bundle when the system
        #: predates it or was built without one).  Spans recorded from the
        #: deterministic cell pass carry category "cell" — their sequence
        #: is part of the cross-backend parity contract; wall-clock
        #: dispatch spans carry "dispatch" and are excluded.
        self.telemetry = getattr(system, "telemetry", None) or NULL_TELEMETRY

    # -- campaign execution ----------------------------------------------------
    def expand_matrix(
        self,
        experiment_names: Optional[Iterable[str]] = None,
        configuration_keys: Optional[Iterable[str]] = None,
    ) -> List[ValidationRequest]:
        """One round of cross-product requests, in sequential-path order.

        Either side being None means "all registered" — this is the single
        home of that rule; the :meth:`SPSystem.submit` facade expands specs
        through it too.
        """
        names = (
            list(experiment_names)
            if experiment_names is not None
            else [experiment.name for experiment in self.system.experiments()]
        )
        keys = (
            list(configuration_keys)
            if configuration_keys is not None
            else [configuration.key for configuration in self.system.configurations()]
        )
        return [
            ValidationRequest(experiment=name, configuration_key=key)
            for name in names
            for key in keys
        ]

    def run(
        self,
        experiment_names: Optional[Iterable[str]] = None,
        configuration_keys: Optional[Iterable[str]] = None,
        description: Optional[str] = None,
        rounds: int = 1,
        on_cell_complete: Optional[CellCallback] = None,
    ) -> CampaignResult:
        """Execute the cross-product campaign and return its result."""
        return self.run_requests(
            self.expand_matrix(experiment_names, configuration_keys),
            description=description,
            rounds=rounds,
            on_cell_complete=on_cell_complete,
        )

    def run_requests(
        self,
        requests: Sequence[ValidationRequest],
        description: Optional[str] = None,
        rounds: int = 1,
        on_cell_complete: Optional[CellCallback] = None,
    ) -> CampaignResult:
        """Execute an explicit list of validation requests, *rounds* times.

        With a ``cache_budget_bytes``, the live cache is brought back under
        the budget after every round — not just at persist time — so a
        long-running multi-round campaign's memory footprint is bounded by
        the same knob as its persisted journal.
        """
        if rounds < 1:
            raise SchedulingError("a campaign needs at least one round")
        # Account against the cache that will actually serve the campaign: a
        # caching builder already installed on the runner keeps its own cache.
        if self.use_cache:
            cell_builder: Optional[PackageBuilder] = self._caching_builder()
            effective_cache = cell_builder.cache  # type: ignore[union-attr]
        else:
            # The cold path must bypass a caching builder even when one is
            # installed directly on the runner — otherwise "no cache" would
            # silently serve warm replays.
            cell_builder = self._cold_builder()
            effective_cache = self.cache
        statistics_before = effective_cache.statistics.snapshot()
        cells: List[CampaignCell] = []
        for _round in range(rounds):
            cells.extend(
                self._execute_cells(
                    requests,
                    description,
                    cell_builder,
                    on_cell_complete,
                    index_offset=len(cells),
                )
            )
            if self.use_cache and self.cache_budget_bytes is not None:
                evicted = effective_cache.enforce_budget(self.cache_budget_bytes)
                if evicted and self.lifecycle is not None:
                    self.lifecycle.emit(
                        EVENT_BUDGET_EXCEEDED,
                        campaign_id=self.campaign_id,
                        payload={
                            "budget_bytes": self.cache_budget_bytes,
                            "evicted_entries": evicted,
                            "round": _round + 1,
                        },
                    )
        with self.telemetry.tracer.span("dag_construction", category="cell"):
            dag, payloads = self._build_dag(cells, effective_cache)
        try:
            schedule = self.backend.execute(
                ExecutionRequest(
                    dag=dag,
                    workers=self.workers,
                    worker_profile=self.worker_profile,
                    failures=self.failures,
                    policy=self.policy,
                    deadline_seconds=self.deadline_seconds,
                    payloads=payloads,
                    shards=self.shards,
                    lifecycle=self.lifecycle,
                    campaign_id=self.campaign_id,
                    # The sharded backend replays its shards' journals into
                    # the campaign's cache on completion; the merge is
                    # idempotent, so handing it over is safe on every path.
                    merge_cache=effective_cache if self.use_cache else None,
                    telemetry=self.telemetry,
                )
            )
        except SchedulingError as error:
            # The deterministic validation pass has already recorded its runs;
            # only the pool execution failed.  Say so instead of implying the
            # campaign produced nothing.
            raise SchedulingError(
                f"{error} (the {len(cells)} validation run(s) of the campaign "
                "remain recorded in the catalogue)"
            ) from error
        return CampaignResult(
            cells=cells,
            dag=dag,
            schedule=schedule,
            cache_statistics=effective_cache.statistics - statistics_before,
            workers=self.workers,
            batch_size=self.batch_size,
            rounds=rounds,
            description=description,
            policy=self.policy.name,
            backend=self.backend.name,
            payloads={
                task_id: payload
                for task_id, payload in payloads.items()
                if isinstance(payload, BuildTask)
            },
        )

    def _caching_builder(self) -> CachingPackageBuilder:
        """The caching builder the campaign will execute with."""
        original = self.system.runner.builder
        if isinstance(original, CachingPackageBuilder):
            original.telemetry = self.telemetry
            return original
        return CachingPackageBuilder(self.cache, base=original, telemetry=self.telemetry)

    @staticmethod
    def _unwrap_builder(builder: PackageBuilder) -> PackageBuilder:
        """Peel a caching wrapper off a builder, keeping its checker."""
        if not isinstance(builder, CachingPackageBuilder):
            return builder
        if builder.base is not None:
            return builder.base
        return PackageBuilder(checker=builder.checker)

    def _cold_builder(self) -> Optional[PackageBuilder]:
        """The builder for a cache-free campaign, or None to leave the runner.

        An installed :class:`CachingPackageBuilder` is unwrapped to its base
        so the cold path genuinely compiles instead of replaying its cache.
        """
        original = self.system.runner.builder
        unwrapped = self._unwrap_builder(original)
        return None if unwrapped is original else unwrapped

    def _execute_cells(
        self,
        requests: Sequence[ValidationRequest],
        description: Optional[str],
        cell_builder: Optional[PackageBuilder],
        on_cell_complete: Optional[CellCallback] = None,
        index_offset: int = 0,
    ) -> List[CampaignCell]:
        """Run one round of cells in sequential order.

        With a *cell_builder*, it replaces the runner's builder for the
        duration of the round (the caching wrapper on the warm path, the
        unwrapped base on the cold path); ``None`` leaves the runner
        untouched.
        """
        original_builder = self.system.runner.builder
        cells: List[CampaignCell] = []
        try:
            if cell_builder is not None:
                self.system.runner.builder = cell_builder
            for index, request in enumerate(requests, start=index_offset):
                # The span attributes are pure matrix coordinates, so the
                # cell-pass span sequence is identical on every backend.
                with self.telemetry.tracer.span(
                    "cell_validate",
                    category="cell",
                    experiment=request.experiment,
                    configuration=request.configuration_key,
                ):
                    result = self.system.validate(
                        request.experiment,
                        request.configuration_key,
                        description=request.description or description,
                        reference_configuration_key=request.reference_configuration_key,
                    )
                self.telemetry.metrics.increment(
                    "scheduler_cells_total", backend=self.backend.name
                )
                cell = CampaignCell(
                    index=index,
                    experiment=request.experiment,
                    configuration_key=request.configuration_key,
                    result=result,
                )
                cells.append(cell)
                if on_cell_complete is not None:
                    on_cell_complete(cell)
                # Emitted from the deterministic cell pass — not from the
                # wall-clock dispatch — so the per-cell event order is
                # identical on every backend (the parity-tested contract).
                if self.lifecycle is not None:
                    self.lifecycle.emit(
                        EVENT_CELL_COMPLETED,
                        campaign_id=self.campaign_id,
                        payload={
                            "cell_index": cell.index,
                            "experiment": cell.experiment,
                            "configuration_key": cell.configuration_key,
                            "run_id": cell.run.run_id,
                            "passed": cell.result.successful,
                        },
                        subjects={"cell": cell},
                    )
        finally:
            self.system.runner.builder = original_builder
        return cells

    # -- DAG derivation --------------------------------------------------------
    def _build_dag(
        self, cells: Sequence[CampaignCell], cache: Optional[BuildCache] = None
    ) -> Tuple[CampaignDAG, Dict[str, TaskPayload]]:
        """Derive the campaign DAG, with task durations from the executed runs.

        Alongside the DAG, every task gets a payload — the real work a
        wall-clock backend executes on its threads.  Build tasks get a
        re-executable :class:`~repro.buildsys.builder.BuildTask` (builds are
        pure functions of the package content digest, so the concurrent
        re-execution is race-free and digest-checked against the recorded
        result); test and chain tasks get a read-only verification replay of
        their recorded jobs.
        """
        dag = CampaignDAG()
        payloads: Dict[str, TaskPayload] = {}
        build_builder = self._real_build_builder()
        # The build order depends on the experiment only; compute it once
        # instead of once per matrix cell.
        build_orders: Dict[str, List[str]] = {}
        for cell in cells:
            experiment = self.system.experiment(cell.experiment)
            if cell.experiment not in build_orders:
                build_orders[cell.experiment] = DependencyGraph(
                    experiment.inventory
                ).build_order()
            self._add_cell_tasks(
                dag,
                payloads,
                cell,
                experiment,
                build_orders[cell.experiment],
                cache,
                build_builder,
            )
        return dag, payloads

    def _real_build_builder(self) -> Optional[PackageBuilder]:
        """A builder safe to re-execute builds with on backend threads.

        Only a plain :class:`PackageBuilder` (possibly hiding under the
        caching wrapper) is known to be a stateless pure function; a custom
        builder subclass (e.g. a stateful fault injector) returns None and
        the build tasks fall back to verification replays.
        """
        builder = self._unwrap_builder(self.system.runner.builder)
        if type(builder) is PackageBuilder:
            return PackageBuilder(checker=builder.checker)
        return None

    def _add_cell_tasks(
        self,
        dag: CampaignDAG,
        payloads: Dict[str, TaskPayload],
        cell: CampaignCell,
        experiment: ExperimentDefinition,
        build_order: Sequence[str],
        cache: Optional[BuildCache],
        build_builder: Optional[PackageBuilder],
    ) -> None:
        run = cell.run
        prefix = f"c{cell.index:04d}"
        build_ids: Dict[str, str] = {}
        configuration = self.system.configuration(cell.configuration_key)
        for name in build_order:
            package = experiment.inventory.get(name)
            job = run.job_for(f"compile-{name}")
            task_id = f"{prefix}:build:{name}"
            dag.add(
                CampaignTask(
                    task_id=task_id,
                    kind=TaskKind.BUILD,
                    cell_index=cell.index,
                    experiment=cell.experiment,
                    configuration_key=cell.configuration_key,
                    duration_seconds=job.duration_seconds,
                    dependencies=tuple(
                        build_ids[dependency] for dependency in package.dependencies
                    ),
                )
            )
            # A skipped compile job never ran build_package during the cell
            # pass, so there is nothing to re-execute for it.
            if build_builder is not None and job.status is not JobStatus.SKIPPED:
                expected = None
                # The digest only matters to a backend that really runs the
                # payload; skip the replay-and-hash work for simulators.
                if cache is not None and self.backend.executes_payloads:
                    recorded = cache.peek(package, configuration)
                    if recorded is not None:
                        expected = build_result_digest(recorded)
                payloads[task_id] = BuildTask(
                    package=package,
                    configuration=configuration,
                    builder=build_builder,
                    expected_digest=expected,
                )
            else:
                payloads[task_id] = self._verification_payload(
                    run, [f"compile-{name}"]
                )
            build_ids[name] = task_id
        # Tests start once the cell's compilation phase is complete, exactly
        # as the validation runner sequences its phases.
        all_builds = tuple(build_ids.values())
        for batch_index, batch in enumerate(
            chunked(experiment.standalone_tests, self.batch_size)
        ):
            task_id = f"{prefix}:standalone-batch:{batch_index:03d}"
            dag.add(
                CampaignTask(
                    task_id=task_id,
                    kind=TaskKind.TEST_BATCH,
                    cell_index=cell.index,
                    experiment=cell.experiment,
                    configuration_key=cell.configuration_key,
                    duration_seconds=sum(
                        run.job_for(test.name).duration_seconds for test in batch
                    ),
                    dependencies=all_builds,
                    n_tests=len(batch),
                )
            )
            payloads[task_id] = self._verification_payload(
                run, [test.name for test in batch]
            )
        for chain in experiment.chains:
            previous: Optional[str] = None
            for step in chain.steps:
                task_id = f"{prefix}:chain:{step.name}"
                dag.add(
                    CampaignTask(
                        task_id=task_id,
                        kind=TaskKind.CHAIN_STEP,
                        cell_index=cell.index,
                        experiment=cell.experiment,
                        configuration_key=cell.configuration_key,
                        duration_seconds=run.job_for(step.name).duration_seconds,
                        dependencies=(previous,) if previous is not None else all_builds,
                    )
                )
                payloads[task_id] = self._verification_payload(run, [step.name])
                previous = task_id

    def _verification_payload(
        self, run: ValidationRun, job_names: Sequence[str]
    ) -> TaskPayload:
        """Real (read-only) work for one task on a wall-clock backend.

        The payload replays the task's slice of the recorded cell: every job
        document is re-serialised and content-hashed, and the job's stored
        output document is re-read from the common storage.  Touching only
        immutable recorded state keeps the concurrent execution free of
        races — and of any way to change the scientific output.
        """
        storage = self.system.storage
        telemetry = self.telemetry

        def verify() -> str:
            # Runs on backend worker threads; the span lands in the
            # "dispatch" category, outside the parity contract.
            with telemetry.tracer.span(
                "verification", category="dispatch", jobs=len(job_names)
            ):
                digests = []
                for name in job_names:
                    job = run.job_for(name)
                    document = job.to_document()
                    if job.output_key and storage.exists("results", job.output_key):
                        storage.get("results", job.output_key)
                    digests.append(stable_digest(document))
                return stable_digest(digests)

        return verify


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "CellCallback",
    "CampaignCell",
    "CampaignResult",
    "CampaignScheduler",
]
