"""Request objects for the unified execution API.

A validation campaign used to be described by the keyword arguments of four
overlapping ``SPSystem`` entrypoints.  This module turns that description
into data: a frozen :class:`CampaignSpec` names everything a campaign needs
(the matrix, the pool, the policy, the execution backend and the cache
options), round-trips losslessly through :meth:`CampaignSpec.to_dict` /
:meth:`CampaignSpec.from_dict`, and therefore persists into the common
sp-system storage — a spec loaded back from a previous installation replays
the byte-identical campaign.

Two shapes of matrix are supported.  The common one is the cross product:
*experiments* x *configuration_keys* (either side ``None`` meaning "all
registered"), repeated *rounds* times.  The explicit one is a tuple of
:class:`ValidationRequest` cells — used by the regular-operation service,
whose cron schedule produces heterogeneous (experiment, configuration,
description) triples that no cross product can express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro._common import SchedulingError
from repro.scheduler.pool import SCHEDULING_POLICIES, WorkerFailure

#: Default number of standalone tests grouped into one worker-slot batch.
#: (Lives here so the spec layer does not depend on the scheduler module.)
DEFAULT_BATCH_SIZE = 4

#: Valid values of :attr:`CampaignSpec.on_deadline`.
ON_DEADLINE_MODES = ("report", "abort")


@dataclass(frozen=True)
class ValidationRequest:
    """One requested validation cell: an experiment on a configuration."""

    experiment: str
    configuration_key: str
    description: Optional[str] = None
    reference_configuration_key: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view; :meth:`from_dict` round-trips it."""
        return {
            "experiment": self.experiment,
            "configuration_key": self.configuration_key,
            "description": self.description,
            "reference_configuration_key": self.reference_configuration_key,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ValidationRequest":
        """Reconstruct a request serialised by :meth:`to_dict`."""
        try:
            experiment = str(payload["experiment"])
            configuration_key = str(payload["configuration_key"])
        except (KeyError, TypeError) as error:
            raise SchedulingError(
                f"a validation request needs an experiment and a "
                f"configuration key (got {payload!r})"
            ) from error
        description = payload.get("description")
        reference = payload.get("reference_configuration_key")
        return cls(
            experiment=experiment,
            configuration_key=configuration_key,
            description=None if description is None else str(description),
            reference_configuration_key=(
                None if reference is None else str(reference)
            ),
        )


def _tuple_or_none(name: str, value) -> Optional[Tuple]:
    if value is None:
        return None
    if isinstance(value, str):
        # tuple("HERMES") would silently become per-character entries.
        raise SchedulingError(
            f"campaign spec field {name!r} must be a list of strings, "
            f"not the string {value!r}"
        )
    return tuple(value)


@dataclass(frozen=True)
class CampaignSpec:
    """Everything one validation campaign needs, as immutable data.

    The spec is the single currency of the execution API:
    :meth:`SPSystem.submit` consumes one, persists it into the common
    storage, and the CLI can load one back from disk (``campaign --spec``)
    to replay the identical campaign.
    """

    #: Cross-product matrix: experiments (None = every registered one) ...
    experiments: Optional[Tuple[str, ...]] = None
    #: ... times configuration keys (None = every known configuration).
    configuration_keys: Optional[Tuple[str, ...]] = None
    #: Explicit cell list instead of the cross product (mutually exclusive).
    requests: Optional[Tuple[ValidationRequest, ...]] = None
    description: Optional[str] = None
    workers: int = 1
    #: Concurrent task slots per worker; None uses the validation VM profile.
    slots_per_worker: Optional[int] = None
    rounds: int = 1
    batch_size: int = DEFAULT_BATCH_SIZE
    policy: str = "fifo"
    deadline_seconds: Optional[float] = None
    #: Execution backend name from the backend registry.
    backend: str = "simulated"
    #: Shard count for the sharded backend: the campaign's cells are
    #: partitioned across this many worker processes, each persisting its
    #: build results as journal segments into a private storage directory,
    #: merged back into the parent cache on completion.  Setting ``shards``
    #: while leaving ``backend`` at its "simulated" default selects the
    #: sharded backend; an explicit non-sharded backend combined with
    #: ``shards`` is rejected by :meth:`validate`.  ``None`` on the sharded
    #: backend defaults the shard count to ``workers``.
    shards: Optional[int] = None
    #: Injected worker failures (simulated backend only).
    failures: Tuple[WorkerFailure, ...] = ()
    #: Restore a persisted build-cache journal before the first campaign.
    warm_start: bool = True
    #: Layer the content-addressed build cache over the builder at all.
    #: ``False`` runs the cold path (every build compiled from scratch) —
    #: the CLI's ``--no-cache`` debugging mode.
    use_cache: bool = True
    #: Size budget applied when the build cache is persisted afterwards.
    cache_budget_bytes: Optional[int] = None
    #: Record the spec in the ``campaigns`` storage namespace on submission.
    persist_spec: bool = True
    #: Ingest every completed cell into the validation history ledger
    #: (``history`` storage namespace).  ``None`` (the default) means auto:
    #: record exactly when the mounted storage already carries a ledger —
    #: so a fresh installation's output stays byte-identical to the
    #: pre-history seed path, while an installation mounted on a recorded
    #: storage keeps its longitudinal history growing.  The value travels
    #: in the serialised spec, so replays make the same decision.
    record_history: Optional[bool] = None
    #: Named lifecycle plugins from :data:`repro.plugins.CAMPAIGN_PLUGINS`
    #: attached for this submission (e.g. ``("regression-alerts",)``).
    #: Empty by default, so plain campaigns never touch plugin-owned
    #: storage namespaces and replays stay byte-identical.
    plugins: Tuple[str, ...] = ()
    #: What a crossed ``deadline_seconds`` does: ``"report"`` (the
    #: historical behaviour — late cells are reported, nothing is
    #: cancelled) or ``"abort"`` (a deadline-abort early-stop policy
    #: cancels the queued cells and the submission fails; completed cells
    #: keep their recorded run documents).
    on_deadline: str = "report"
    #: Filesystem path of a JSONL lifecycle-event log appended during the
    #: submission (``None`` disables the sink).  The log is an external
    #: monitoring artefact outside the common storage.
    event_log: Optional[str] = None

    def __post_init__(self) -> None:
        # Normalise the container fields so equality (and therefore the
        # replay tests) never depends on list-versus-tuple spelling.
        object.__setattr__(
            self, "experiments", _tuple_or_none("experiments", self.experiments)
        )
        object.__setattr__(
            self,
            "configuration_keys",
            _tuple_or_none("configuration_keys", self.configuration_keys),
        )
        object.__setattr__(
            self, "requests", _tuple_or_none("requests", self.requests)
        )
        object.__setattr__(self, "failures", tuple(self.failures))
        if not isinstance(self.plugins, str):
            # A bare string would explode into per-character "plugins" via
            # tuple(); leave it for _check_types to reject with a clear error.
            object.__setattr__(self, "plugins", tuple(self.plugins))
        # ``shards=N`` alone is the ergonomic spelling of the sharded
        # backend; the normalisation happens here so the serialised spec
        # (and therefore every replay) records backend="sharded" explicitly.
        if self.shards is not None and self.backend == "simulated":
            object.__setattr__(self, "backend", "sharded")

    # -- validation -----------------------------------------------------------
    def _check_types(self) -> None:
        """Reject wrongly-typed fields with a clear error, not a TypeError.

        A hand-written spec file ("workers": "4", "warm_start": "yes")
        must fail as cleanly as a typo'd key does.
        """

        def fail(name: str, expected: str) -> None:
            raise SchedulingError(
                f"campaign spec field {name!r} must be {expected}, "
                f"got {getattr(self, name)!r}"
            )

        def is_int(value: object) -> bool:
            return isinstance(value, int) and not isinstance(value, bool)

        for name in ("workers", "rounds", "batch_size"):
            if not is_int(getattr(self, name)):
                fail(name, "an integer")
        for name in ("slots_per_worker", "cache_budget_bytes", "shards"):
            value = getattr(self, name)
            if value is not None and not is_int(value):
                fail(name, "an integer or null")
        if self.deadline_seconds is not None and not (
            is_int(self.deadline_seconds)
            or isinstance(self.deadline_seconds, float)
        ):
            fail("deadline_seconds", "a number or null")
        for name in ("policy", "backend", "on_deadline"):
            if not isinstance(getattr(self, name), str):
                fail(name, "a string")
        if self.event_log is not None and not isinstance(self.event_log, str):
            fail("event_log", "a path string or null")
        if isinstance(self.plugins, str) or not all(
            isinstance(entry, str) for entry in self.plugins
        ):
            fail("plugins", "a list of plugin names")
        if self.description is not None and not isinstance(self.description, str):
            fail("description", "a string or null")
        for name in ("warm_start", "use_cache", "persist_spec"):
            if not isinstance(getattr(self, name), bool):
                fail(name, "a boolean")
        if self.record_history is not None and not isinstance(
            self.record_history, bool
        ):
            fail("record_history", "a boolean or null (null = auto)")
        for name in ("experiments", "configuration_keys"):
            value = getattr(self, name)
            if value is not None and not all(
                isinstance(entry, str) for entry in value
            ):
                fail(name, "a list of strings or null")
        if self.requests is not None and not all(
            isinstance(request, ValidationRequest) for request in self.requests
        ):
            fail("requests", "a list of validation requests or null")
        if not all(
            isinstance(failure, WorkerFailure) for failure in self.failures
        ):
            fail("failures", "a list of [worker_index, at_seconds] pairs")

    def validate(self) -> None:
        """Raise :class:`~repro._common.SchedulingError` on an invalid spec."""
        # Imported here: the backend registry imports this module's
        # DEFAULT_BATCH_SIZE consumers, so the top level must stay acyclic.
        from repro.scheduler.backends import EXECUTION_BACKENDS

        self._check_types()
        if self.workers < 1:
            raise SchedulingError("a campaign spec needs at least one worker")
        if self.rounds < 1:
            raise SchedulingError("a campaign spec needs at least one round")
        if self.batch_size < 1:
            raise SchedulingError(
                "a campaign spec needs a positive standalone-test batch size"
            )
        if self.slots_per_worker is not None and self.slots_per_worker < 1:
            raise SchedulingError("slots per worker must be positive")
        if self.shards is not None and self.shards < 1:
            raise SchedulingError("a sharded campaign needs at least one shard")
        if self.shards is not None and self.backend != "sharded":
            raise SchedulingError(
                "campaign spec field 'shards' requires the 'sharded' "
                f"backend, not {self.backend!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise SchedulingError("a campaign deadline must be positive")
        if self.on_deadline not in ON_DEADLINE_MODES:
            raise SchedulingError(
                f"unknown on_deadline mode {self.on_deadline!r} "
                f"(known: {', '.join(ON_DEADLINE_MODES)})"
            )
        if self.on_deadline == "abort" and self.deadline_seconds is None:
            raise SchedulingError(
                "on_deadline='abort' needs a deadline: set deadline_seconds"
            )
        if self.plugins:
            # Imported lazily for the same acyclicity reason as the backend
            # registry above.
            from repro.plugins import CAMPAIGN_PLUGINS

            for name in self.plugins:
                if name not in CAMPAIGN_PLUGINS:
                    known = ", ".join(sorted(CAMPAIGN_PLUGINS))
                    raise SchedulingError(
                        f"unknown campaign plugin {name!r} (known: {known})"
                    )
        if self.cache_budget_bytes is not None and self.cache_budget_bytes < 0:
            raise SchedulingError("a cache budget cannot be negative")
        if self.cache_budget_bytes is not None and not self.use_cache:
            raise SchedulingError(
                "a cache budget needs the cache: with use_cache=false the "
                "budget would be a silent no-op"
            )
        if self.policy not in SCHEDULING_POLICIES:
            known = ", ".join(sorted(SCHEDULING_POLICIES))
            raise SchedulingError(
                f"unknown scheduling policy {self.policy!r} (known: {known})"
            )
        if self.backend not in EXECUTION_BACKENDS:
            known = ", ".join(sorted(EXECUTION_BACKENDS))
            raise SchedulingError(
                f"unknown execution backend {self.backend!r} (known: {known})"
            )
        if self.requests is not None and (
            self.experiments is not None or self.configuration_keys is not None
        ):
            raise SchedulingError(
                "a campaign spec takes either an explicit request list or an "
                "experiments x configurations cross product, not both"
            )
        if self.failures and self.backend != "simulated":
            raise SchedulingError(
                "worker failure injection is a feature of the simulated "
                f"backend; the {self.backend!r} backend executes for real"
            )

    # -- persistence ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view; :meth:`from_dict` round-trips it exactly."""
        return {
            "experiments": (
                None if self.experiments is None else list(self.experiments)
            ),
            "configuration_keys": (
                None
                if self.configuration_keys is None
                else list(self.configuration_keys)
            ),
            "requests": (
                None
                if self.requests is None
                else [request.to_dict() for request in self.requests]
            ),
            "description": self.description,
            "workers": self.workers,
            "slots_per_worker": self.slots_per_worker,
            "rounds": self.rounds,
            "batch_size": self.batch_size,
            "policy": self.policy,
            "deadline_seconds": self.deadline_seconds,
            "backend": self.backend,
            "shards": self.shards,
            "failures": [
                [failure.worker_index, failure.at_seconds]
                for failure in self.failures
            ],
            "warm_start": self.warm_start,
            "use_cache": self.use_cache,
            "cache_budget_bytes": self.cache_budget_bytes,
            "persist_spec": self.persist_spec,
            "record_history": self.record_history,
            "plugins": list(self.plugins),
            "on_deadline": self.on_deadline,
            "event_log": self.event_log,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CampaignSpec":
        """Reconstruct a spec serialised by :meth:`to_dict`.

        Unknown keys are rejected (a typo in a hand-written spec file must
        not silently fall back to a default), missing keys take the
        dataclass defaults.
        """
        if not isinstance(payload, dict):
            raise SchedulingError(
                f"a campaign spec document must be a mapping, got {payload!r}"
            )
        known = {name for name in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SchedulingError(
                "unknown campaign spec field(s): " + ", ".join(unknown)
            )
        kwargs: Dict[str, object] = dict(payload)
        if kwargs.get("requests") is not None:
            requests = kwargs["requests"]
            if isinstance(requests, str) or not hasattr(requests, "__iter__"):
                raise SchedulingError(
                    "campaign spec field 'requests' must be a list of "
                    f"validation request documents, got {requests!r}"
                )
            kwargs["requests"] = tuple(
                ValidationRequest.from_dict(entry) for entry in requests
            )
        if kwargs.get("failures"):
            try:
                kwargs["failures"] = tuple(
                    WorkerFailure(
                        worker_index=int(entry[0]), at_seconds=float(entry[1])
                    )
                    for entry in kwargs["failures"]  # type: ignore[union-attr]
                )
            except (TypeError, ValueError, IndexError, KeyError) as error:
                raise SchedulingError(
                    "campaign spec field 'failures' must be a list of "
                    f"[worker_index, at_seconds] pairs: {error}"
                ) from error
        try:
            return cls(**kwargs)  # type: ignore[arg-type]
        except TypeError as error:
            raise SchedulingError(f"invalid campaign spec document: {error}") from error


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ON_DEADLINE_MODES",
    "ValidationRequest",
    "CampaignSpec",
]
