"""Content-hash keyed build cache layered over the package builder.

A campaign rebuilds the same package inventories again and again: every
validation round compiles every package of every experiment on every
configuration.  The simulated builds are pure functions of the package and
the environment configuration, so the :class:`BuildCache` keys each
:class:`~repro.buildsys.builder.BuildResult` by a content hash of exactly the
inputs that determine it — package identity, its requirements, the compiler,
the operating system ABI, the word size and the installed externals.  A hit
replays the recorded result (diagnostics, tarball and simulated build time
included), which keeps the cached path bit-identical to a fresh build while
skipping the work.

Cached tarballs live in the :class:`~repro.storage.artifacts.ArtifactStore`;
an entry whose artifact has been removed or overwritten there is evicted on
the next lookup instead of serving a dangling digest.

The cache is also a resident of the common sp-system storage: the paper's
"common sp-system storage where the tests from the experiments as well as the
test results are stored" is exactly where validated build artifacts belong
across campaigns.  :meth:`BuildCache.persist_to` snapshots every entry (and
its tarball payload) into the ``buildcache`` namespace, and
:meth:`BuildCache.restore_from` warm-starts a fresh cache from it — evicting
on restore any entry whose artifact digest can no longer be materialised.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro._common import StorageError, stable_digest
from repro.buildsys.builder import BuildResult, PackageBuilder
from repro.buildsys.package import SoftwarePackage
from repro.buildsys.tarball import Tarball
from repro.environment.compatibility import SoftwareRequirements
from repro.environment.configuration import EnvironmentConfiguration
from repro.storage.artifacts import ArtifactStore
from repro.storage.common_storage import CommonStorage


def _requirements_fingerprint(requirements: SoftwareRequirements) -> str:
    """Stable fingerprint of a requirement set (quirky variants differ)."""
    return stable_digest(
        requirements.min_compiler,
        requirements.max_compiler,
        requirements.max_strictness,
        sorted(requirements.word_sizes),
        requirements.cxx_standard,
        requirements.min_os_abi,
        requirements.max_os_abi,
        sorted(
            (
                external.product,
                external.min_api_level,
                external.max_api_level,
                sorted(external.used_apis),
            )
            for external in requirements.externals
        ),
    )


def build_cache_key(
    package: SoftwarePackage, configuration: EnvironmentConfiguration
) -> str:
    """Content hash of every input that determines a package build result.

    The key is deliberately finer-grained than ``configuration.key``: two
    configurations sharing an OS/word-size/compiler label but differing in
    installed externals (or a configuration whose compiler or OS release was
    swapped in place) must not share cache entries.
    """
    return stable_digest(
        "build-cache",
        package.key,
        package.experiment,
        package.language.value,
        package.lines_of_code,
        package.fragility,
        sorted(package.dependencies),
        _requirements_fingerprint(package.requirements),
        configuration.key,
        configuration.operating_system.name,
        configuration.operating_system.abi_level,
        configuration.word_size,
        configuration.compiler.family,
        configuration.compiler.version,
        configuration.compiler.strictness,
        sorted(configuration.external_map().items()),
    )


@dataclass
class CacheStatistics:
    """Hit/miss accounting of one build cache (or one campaign's slice of it)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __sub__(self, other: "CacheStatistics") -> "CacheStatistics":
        return CacheStatistics(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            stores=self.stores - other.stores,
            evictions=self.evictions - other.evictions,
        )

    def snapshot(self) -> "CacheStatistics":
        """A frozen copy (for before/after deltas around a campaign)."""
        return CacheStatistics(self.hits, self.misses, self.stores, self.evictions)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable view, including the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CacheStatistics":
        """Reconstruct statistics serialised by :meth:`as_dict`."""
        return cls(
            hits=int(payload.get("hits", 0)),  # type: ignore[arg-type]
            misses=int(payload.get("misses", 0)),  # type: ignore[arg-type]
            stores=int(payload.get("stores", 0)),  # type: ignore[arg-type]
            evictions=int(payload.get("evictions", 0)),  # type: ignore[arg-type]
        )


class BuildCache:
    """Caches build results by content hash, backed by the artifact store."""

    #: Label under which cached tarballs are referenced in the artifact store.
    ARTIFACT_LABEL = "build-cache"

    #: Common-storage namespace holding the persisted cache snapshot.
    NAMESPACE = "buildcache"

    #: Key prefixes inside the namespace (storage keys must start with a
    #: letter, so the hex content hashes and digests get a prefix).
    ENTRY_PREFIX = "entry_"
    ARTIFACT_PREFIX = "artifact_"
    STATISTICS_KEY = "statistics"

    def __init__(self, artifact_store: Optional[ArtifactStore] = None) -> None:
        self.artifact_store = artifact_store
        self._entries: Dict[str, BuildResult] = {}
        self.statistics = CacheStatistics()
        # Least-recently-hit bookkeeping for the persistence size budget:
        # every hit (and every store) stamps the entry with a monotonically
        # increasing tick, so eviction order is deterministic.
        self._recency: Dict[str, int] = {}
        self._tick = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _touch(self, key: str) -> None:
        self._tick += 1
        self._recency[key] = self._tick

    def lookup(
        self, package: SoftwarePackage, configuration: EnvironmentConfiguration
    ) -> Optional[BuildResult]:
        """Return a replay of the cached build result, or None on a miss.

        An entry whose tarball no longer exists in the artifact store (it was
        removed or overwritten) is evicted and counts as a miss.
        """
        key = build_cache_key(package, configuration)
        entry = self._entries.get(key)
        if entry is not None and self._artifact_gone(entry):
            self._evict(key)
            entry = None
        if entry is None:
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        self._touch(key)
        return self._replay(entry)

    def store(
        self,
        package: SoftwarePackage,
        configuration: EnvironmentConfiguration,
        result: BuildResult,
    ) -> str:
        """Record *result* under its content-hash key and return the key."""
        key = build_cache_key(package, configuration)
        self._entries[key] = self._replay(result)
        self.statistics.stores += 1
        self._touch(key)
        if result.tarball is not None and self.artifact_store is not None:
            self.artifact_store.store(result.tarball, label=self.ARTIFACT_LABEL)
        return key

    def contains(
        self, package: SoftwarePackage, configuration: EnvironmentConfiguration
    ) -> bool:
        """True when a (still valid) entry exists; does not touch the counters."""
        entry = self._entries.get(build_cache_key(package, configuration))
        return entry is not None and not self._artifact_gone(entry)

    def clear(self) -> None:
        """Drop every entry (the statistics are kept)."""
        self._entries.clear()
        self._recency.clear()

    def _evict(self, key: str) -> None:
        del self._entries[key]
        self._recency.pop(key, None)
        self.statistics.evictions += 1

    # -- size accounting -----------------------------------------------------
    @staticmethod
    def entry_size_bytes(entry: BuildResult) -> int:
        """Persisted footprint of one entry: its document plus its tarball."""
        document_bytes = len(
            json.dumps(entry.to_dict(), sort_keys=True).encode("utf-8")
        )
        tarball_bytes = 0 if entry.tarball is None else entry.tarball.size_bytes
        return document_bytes + tarball_bytes

    def total_size_bytes(self) -> int:
        """Persisted footprint of the whole cache (documents plus tarballs)."""
        return sum(self.entry_size_bytes(entry) for entry in self._entries.values())

    def enforce_budget(self, max_bytes: int) -> int:
        """Evict least-recently-hit entries until the cache fits *max_bytes*.

        Ties in the recency stamps (possible only for entries never touched
        since a restore) fall back to the entry key, so eviction order is
        deterministic.  Returns the number of evicted entries; evictions are
        counted in :attr:`statistics`.
        """
        if max_bytes < 0:
            raise StorageError("a cache size budget cannot be negative")
        evicted = 0
        total = self.total_size_bytes()
        for key in sorted(
            self._entries, key=lambda key: (self._recency.get(key, 0), key)
        ):
            if total <= max_bytes:
                break
            total -= self.entry_size_bytes(self._entries[key])
            self._evict(key)
            evicted += 1
        return evicted

    # -- cross-campaign persistence -----------------------------------------
    def persist_to(
        self, storage: CommonStorage, max_bytes: Optional[int] = None
    ) -> int:
        """Snapshot the cache into *storage*'s ``buildcache`` namespace.

        Every (still valid) entry is written as an ``entry_<key>`` document;
        the tarball payloads go alongside as ``artifact_<digest>`` documents
        so a fresh installation restoring the snapshot can re-materialise the
        artifacts into its own :class:`ArtifactStore`.  The cumulative
        statistics are stored too, so cross-campaign accounting survives a
        restart.  Stale documents from a previous snapshot are replaced
        wholesale.

        With *max_bytes*, the snapshot is kept within the size budget by
        first evicting least-recently-hit entries (from the live cache too —
        the snapshot and the cache it restores into stay consistent), so
        the persisted state no longer grows unboundedly across campaigns.
        Returns the number of persisted entries.
        """
        if max_bytes is not None:
            self.enforce_budget(max_bytes)
        namespace = storage.create_namespace(self.NAMESPACE)
        for key in namespace.keys():
            namespace.delete(key)
        persisted = 0
        for key, entry in sorted(self._entries.items()):
            if self._artifact_gone(entry):
                continue
            namespace.put(
                f"{self.ENTRY_PREFIX}{key}",
                {"cache_key": key, "result": entry.to_dict()},
            )
            if entry.tarball is not None:
                namespace.put(
                    f"{self.ARTIFACT_PREFIX}{entry.tarball.digest}",
                    entry.tarball.to_dict(),
                )
            persisted += 1
        namespace.put(self.STATISTICS_KEY, self.statistics.as_dict())
        return persisted

    @classmethod
    def restore_from(
        cls, storage: CommonStorage, artifact_store: Optional[ArtifactStore] = None
    ) -> "BuildCache":
        """Warm-start a cache from a snapshot persisted by :meth:`persist_to`.

        Tarballs travelling with the snapshot are re-materialised into
        *artifact_store*.  An entry whose artifact digest is neither already
        present in the store nor part of the snapshot is evicted on restore
        (and counted in ``statistics.evictions``) instead of being loaded
        with a dangling digest.  The source *storage* is never modified — it
        may belong to another live installation; the next :meth:`persist_to`
        rewrites the snapshot without the evicted entries anyway.  A storage
        without a ``buildcache`` namespace restores to an empty cache.
        """
        cache = cls(artifact_store)
        if cls.NAMESPACE not in storage.namespaces():
            return cache
        namespace = storage.namespace(cls.NAMESPACE)
        if namespace.exists(cls.STATISTICS_KEY):
            cache.statistics = CacheStatistics.from_dict(
                namespace.get(cls.STATISTICS_KEY)  # type: ignore[arg-type]
            )
        for key in namespace.keys(prefix=cls.ENTRY_PREFIX):
            document = namespace.get(key)
            entry = BuildResult.from_dict(document["result"])  # type: ignore[index,arg-type]
            if not cache._materialise_artifact(entry, namespace):
                cache.statistics.evictions += 1
                continue
            cache._entries[str(document["cache_key"])] = entry  # type: ignore[index]
        return cache

    def _materialise_artifact(self, entry: BuildResult, namespace) -> bool:
        """Ensure the entry's tarball exists in the artifact store.

        Returns False when the digest can no longer be materialised — the
        restore-time equivalent of the lookup-time eviction.
        """
        if entry.tarball is None:
            return True
        if self.artifact_store is None:
            # No backing store to check against; mirror the lookup-time
            # semantics, where a store-less cache never evicts.
            return True
        if self.artifact_store.exists(entry.tarball.digest):
            return True
        artifact_key = f"{self.ARTIFACT_PREFIX}{entry.tarball.digest}"
        if not namespace.exists(artifact_key):
            return False
        tarball = Tarball.from_dict(namespace.get(artifact_key))
        self.artifact_store.store(tarball, label=self.ARTIFACT_LABEL)
        return True

    # -- internals -----------------------------------------------------------
    def _artifact_gone(self, entry: BuildResult) -> bool:
        return (
            entry.tarball is not None
            and self.artifact_store is not None
            and not self.artifact_store.exists(entry.tarball.digest)
        )

    @staticmethod
    def _replay(entry: BuildResult) -> BuildResult:
        # Fresh list containers so a caller mutating its copy cannot corrupt
        # the cached entry; the tarball is immutable and shared.
        return BuildResult(
            package=entry.package,
            configuration_key=entry.configuration_key,
            status=entry.status,
            diagnostics=list(entry.diagnostics),
            issues=list(entry.issues),
            tarball=entry.tarball,
            build_seconds=entry.build_seconds,
        )


class CachingPackageBuilder(PackageBuilder):
    """A :class:`PackageBuilder` that consults a :class:`BuildCache` first.

    ``build_inventory`` is inherited: it orders the packages and handles
    dependency skips, while every actual compilation goes through the cached
    :meth:`build_package` here (delegated to the wrapped *base* builder on a
    miss).  Skipped results are not cached — they cost nothing to recompute
    and depend on campaign-local dependency state.

    Limitations: the wrapper assumes the builds it caches are deterministic
    pure functions of (package, configuration), like every builder in this
    code base.  A base builder with a *stateful* ``build_package`` (e.g. a
    fail-once fault injector) would have its first answer replayed forever,
    and a base overriding ``build_inventory`` itself keeps that override only
    when called directly, not through this wrapper — do not layer the cache
    over such builders.
    """

    def __init__(
        self, cache: BuildCache, base: Optional[PackageBuilder] = None
    ) -> None:
        super().__init__(checker=base.checker if base is not None else None)
        self.cache = cache
        # Misses are delegated to the wrapped builder, so a PackageBuilder
        # subclass with its own build_package keeps its behaviour when the
        # campaign layers the cache over it.
        self.base = base

    def build_package(
        self,
        package: SoftwarePackage,
        configuration: EnvironmentConfiguration,
    ) -> BuildResult:
        cached = self.cache.lookup(package, configuration)
        if cached is not None:
            return cached
        if self.base is not None:
            result = self.base.build_package(package, configuration)
        else:
            result = super().build_package(package, configuration)
        self.cache.store(package, configuration, result)
        return result


__all__ = [
    "build_cache_key",
    "CacheStatistics",
    "BuildCache",
    "CachingPackageBuilder",
]
