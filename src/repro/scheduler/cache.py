"""Content-addressed build cache layered over the package builder.

A campaign rebuilds the same package inventories again and again: every
validation round compiles every package of every experiment on every
configuration.  The simulated builds are pure functions of the package
content and the environment configuration, so the :class:`BuildCache` keys
each :class:`~repro.buildsys.builder.BuildResult` by
:func:`package_identity_digest` — a content hash of exactly the inputs that
determine the build: package name and version, the source digest, the
requirements fingerprint and the target-configuration fingerprint.  The
digest is deliberately **experiment-agnostic**: two experiments pinning the
same external package (a compiler, a ROOT-like toolkit, an OS library —
byte-identical content, different owning collaboration) share one cache
entry, so the shared validation infrastructure builds it once.  A hit
replays the recorded result rebound to the *requesting* package, which keeps
the cached path bit-identical to a fresh build while skipping the work; the
:class:`CacheStatistics` attribute cross-experiment hits to the donating
experiment so reports can show who warm-starts whom.

Cached tarballs live in the :class:`~repro.storage.artifacts.ArtifactStore`;
an entry whose artifact has been removed or overwritten there is evicted on
the next lookup instead of serving a dangling digest.

The cache is also a resident of the common sp-system storage, persisted as
an **append-only journal** in the ``buildcache`` namespace (via
:class:`~repro.storage.common_storage.AppendOnlyJournal`): every
:meth:`BuildCache.persist_to` appends one record per *new* entry and one
tombstone per eviction since the last persist — repeated campaigns write
O(new entries), not O(cache).  :meth:`BuildCache.restore_from` replays the
journal (recovering cleanly from a corrupted trailing record), and
:meth:`BuildCache.compact` rewrites the log from the live state, dropping
tombstones and orphaned artifact payloads and optionally enforcing the
``max_bytes`` budget.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._common import StorageError, stable_digest
from repro.buildsys.builder import BuildResult, PackageBuilder
from repro.buildsys.package import SoftwarePackage
from repro.buildsys.tarball import Tarball
from repro.environment.compatibility import SoftwareRequirements
from repro.environment.configuration import (
    EnvironmentConfiguration,
    configuration_fingerprint,
)
from repro.storage.artifacts import ArtifactStore
from repro.storage.common_storage import (
    AppendOnlyJournal,
    CommonStorage,
    register_journal_namespace,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry


def _requirements_fingerprint(requirements: SoftwareRequirements) -> str:
    """Stable fingerprint of a requirement set (quirky variants differ)."""
    return stable_digest(
        requirements.min_compiler,
        requirements.max_compiler,
        requirements.max_strictness,
        sorted(requirements.word_sizes),
        requirements.cxx_standard,
        requirements.min_os_abi,
        requirements.max_os_abi,
        sorted(
            (
                external.product,
                external.min_api_level,
                external.max_api_level,
                sorted(external.used_apis),
            )
            for external in requirements.externals
        ),
    )


def _target_fingerprint(configuration: EnvironmentConfiguration) -> str:
    """Stable fingerprint of the build-relevant configuration state.

    Deliberately finer-grained than ``configuration.key``: two
    configurations sharing an OS/word-size/compiler label but differing in
    installed externals (or a configuration whose compiler or OS release was
    swapped in place) must not share cache entries.  The digest is the
    shared :func:`~repro.environment.configuration.configuration_fingerprint`
    — the same fingerprint the validation history ledger records per cell.
    """
    return configuration_fingerprint(configuration)


def package_identity_digest(
    package: SoftwarePackage, configuration: EnvironmentConfiguration
) -> str:
    """Experiment-agnostic content hash of everything that determines a build.

    The digest combines the package identity (name, version, source digest,
    requirements fingerprint) with the target-configuration fingerprint.
    Ownership attributes — ``experiment``, ``category``, ``description``,
    ``dependencies`` — never influence the produced
    :class:`~repro.buildsys.builder.BuildResult` and are excluded, so two
    experiments pinning a byte-identical external package address the same
    cache entry.

    The digest is memoised on its frozen inputs: every cache lookup, store
    and DAG-payload preparation of a 10k-cell campaign re-derives the same
    digests, and both dataclasses hash by value, so the pair is a sound
    cache key.  An unhashable input (a hand-built package carrying a list)
    falls back to direct computation.
    """
    try:
        cached = _IDENTITY_DIGESTS.get((package, configuration))
    except TypeError:
        return _package_identity_digest(package, configuration)
    if cached is None:
        if len(_IDENTITY_DIGESTS) >= _IDENTITY_DIGESTS_MAX:
            _IDENTITY_DIGESTS.clear()
        cached = _package_identity_digest(package, configuration)
        _IDENTITY_DIGESTS[(package, configuration)] = cached
    return cached


def _package_identity_digest(
    package: SoftwarePackage, configuration: EnvironmentConfiguration
) -> str:
    return stable_digest(
        "package-identity",
        package.name,
        package.version,
        package.source_digest,
        _requirements_fingerprint(package.requirements),
        _target_fingerprint(configuration),
    )


#: Memo table of :func:`package_identity_digest`, keyed by the frozen
#: (package, configuration) pair; bounded so synthetic-fleet sweeps over
#: millions of distinct packages cannot grow it without limit.
_IDENTITY_DIGESTS: Dict[
    Tuple[SoftwarePackage, EnvironmentConfiguration], str
] = {}
_IDENTITY_DIGESTS_MAX = 65536


def build_cache_key(
    package: SoftwarePackage, configuration: EnvironmentConfiguration
) -> str:
    """Legacy name of :func:`package_identity_digest` (same digest)."""
    return package_identity_digest(package, configuration)


@dataclass
class CacheStatistics:
    """Hit/miss accounting of one build cache (or one campaign's slice of it).

    ``shared_hits`` counts the hits served to a *different* experiment than
    the one that stored the entry — the cross-experiment sharing the
    content-addressed keys enable — and ``donated_by_experiment`` breaks
    those donations down by the storing (donor) experiment.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    shared_hits: int = 0
    donated_by_experiment: Dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def shared_hit_rate(self) -> float:
        """Fraction of hits donated across experiments."""
        return self.shared_hits / self.hits if self.hits else 0.0

    def __sub__(self, other: "CacheStatistics") -> "CacheStatistics":
        donated = {
            experiment: count - other.donated_by_experiment.get(experiment, 0)
            for experiment, count in self.donated_by_experiment.items()
        }
        return CacheStatistics(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            stores=self.stores - other.stores,
            evictions=self.evictions - other.evictions,
            shared_hits=self.shared_hits - other.shared_hits,
            donated_by_experiment={
                experiment: count for experiment, count in donated.items() if count
            },
        )

    def snapshot(self) -> "CacheStatistics":
        """A frozen copy (for before/after deltas around a campaign)."""
        return CacheStatistics(
            self.hits,
            self.misses,
            self.stores,
            self.evictions,
            self.shared_hits,
            dict(self.donated_by_experiment),
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable view, including the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "shared_hits": self.shared_hits,
            "donated_by_experiment": {
                experiment: self.donated_by_experiment[experiment]
                for experiment in sorted(self.donated_by_experiment)
            },
            "hit_rate": self.hit_rate,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CacheStatistics":
        """Reconstruct statistics serialised by :meth:`as_dict`.

        Missing or malformed fields (pre-journal snapshots, foreign tools,
        hand-edited files) degrade to zero/empty instead of failing the
        whole cache restore — statistics are bookkeeping, never worth
        losing the journal over.
        """
        def as_count(value: object) -> int:
            try:
                return int(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return 0

        if not isinstance(payload, dict):
            return cls()
        donated = payload.get("donated_by_experiment", {})
        if not isinstance(donated, dict):
            donated = {}
        return cls(
            hits=as_count(payload.get("hits", 0)),
            misses=as_count(payload.get("misses", 0)),
            stores=as_count(payload.get("stores", 0)),
            evictions=as_count(payload.get("evictions", 0)),
            shared_hits=as_count(payload.get("shared_hits", 0)),
            donated_by_experiment={
                str(experiment): count
                for experiment, count in (
                    (experiment, as_count(raw))
                    for experiment, raw in donated.items()
                )
                if count
            },
        )


class BuildCache:
    """Caches build results by content digest, backed by the artifact store."""

    #: Label under which cached tarballs are referenced in the artifact store.
    ARTIFACT_LABEL = "build-cache"

    #: Key prefixes inside the namespace (storage keys must start with a
    #: letter, so the journal sequence numbers and hex digests get a prefix).
    JOURNAL_PREFIX = "journal_"

    #: Common-storage namespace holding the persisted cache journal.
    #: Registered as journal-backed so ``CommonStorage.persist`` mirrors it
    #: (deleting on-disk files of records a compaction dropped) and batches
    #: its records into on-disk segment files (O(segments) files, not one
    #: per record).
    NAMESPACE = register_journal_namespace("buildcache", JOURNAL_PREFIX)
    ARTIFACT_PREFIX = "artifact_"
    STATISTICS_KEY = "statistics"
    #: Monotonic per-journal write counter ({"epoch": n}), bumped by every
    #: persist; lets a cache detect cheaply that another writer touched the
    #: journal since it last synced.
    EPOCH_KEY = "lineage"
    #: Entry prefix of the pre-journal wholesale-snapshot format.  Its keys
    #: predate the experiment-agnostic content digest and can never be hit
    #: again, so restore drops such documents (counted as evictions) and the
    #: next persist deletes them.
    LEGACY_ENTRY_PREFIX = "entry_"

    def __init__(self, artifact_store: Optional[ArtifactStore] = None) -> None:
        self.artifact_store = artifact_store
        self._entries: Dict[str, BuildResult] = {}
        #: Experiment that first stored each entry (the donor of shared hits).
        self._owners: Dict[str, str] = {}
        #: Per-entry count of hits served to a different experiment than the
        #: storing one.  Eviction under a size budget spares proven donors:
        #: entries no other experiment ever reused go first.
        self._shared_counts: Dict[str, int] = {}
        self.statistics = CacheStatistics()
        # Least-recently-hit bookkeeping for the persistence size budget:
        # every hit (and every store) stamps the entry with a monotonically
        # increasing tick, so eviction order is deterministic.
        self._recency: Dict[str, int] = {}
        self._tick = 0
        # Journal bookkeeping: which entry keys are live in the persisted
        # journal (and under which record sequence), so the next persist
        # appends only the delta.  A restore that hit a corrupted trailing
        # record (or evicted dangling entries) flags the journal for a full
        # compaction rewrite on the next persist.
        self._persisted: Dict[str, int] = {}
        #: Shared-hit count each persisted record was journalled with; an
        #: entry whose live count moved since is re-journalled (superseding
        #: record) so donor-aware eviction survives a restore.
        self._persisted_shared: Dict[str, int] = {}
        self._journal_dirty = False
        #: Tombstone records currently in the journal (restored or appended);
        #: once they outnumber the live entries, persist auto-compacts.
        self._journal_tombstones = 0
        #: The namespace object and its write epoch at the last sync; when
        #: both still match, persisting skips the full lineage scan, keeping
        #: repeated persists O(new entries) — while a rewrite by *another*
        #: cache into the same namespace bumps the epoch and forces the scan.
        self._synced_namespace: Optional[object] = None
        self._synced_epoch = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _touch(self, key: str) -> None:
        self._tick += 1
        self._recency[key] = self._tick

    def lookup(
        self, package: SoftwarePackage, configuration: EnvironmentConfiguration
    ) -> Optional[BuildResult]:
        """Return a replay of the cached build result, or None on a miss.

        An entry whose tarball no longer exists in the artifact store (it was
        removed or overwritten) is evicted and counts as a miss.  A hit
        served to a different experiment than the one that stored the entry
        is additionally counted as a shared hit, attributed to the donor.
        """
        key = package_identity_digest(package, configuration)
        entry = self._entries.get(key)
        if entry is not None and self._artifact_gone(entry):
            self._evict(key)
            entry = None
        if entry is None:
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        owner = self._owners.get(key)
        if owner and owner != package.experiment:
            self.statistics.shared_hits += 1
            self.statistics.donated_by_experiment[owner] = (
                self.statistics.donated_by_experiment.get(owner, 0) + 1
            )
            self._shared_counts[key] = self._shared_counts.get(key, 0) + 1
        self._touch(key)
        return self._replay(entry, package)

    def peek(
        self, package: SoftwarePackage, configuration: EnvironmentConfiguration
    ) -> Optional[BuildResult]:
        """A replay of the entry without touching counters or recency.

        Used by the campaign scheduler to derive the expected result digest
        of a re-executable :class:`~repro.buildsys.builder.BuildTask`.
        """
        entry = self._entries.get(package_identity_digest(package, configuration))
        if entry is None or self._artifact_gone(entry):
            return None
        return self._replay(entry, package)

    def store(
        self,
        package: SoftwarePackage,
        configuration: EnvironmentConfiguration,
        result: BuildResult,
    ) -> str:
        """Record *result* under its content-digest key and return the key."""
        key = package_identity_digest(package, configuration)
        self._entries[key] = self._replay(result, package)
        # The first storing experiment stays the donor even if the entry is
        # later re-stored (the content is identical by construction).
        self._owners.setdefault(key, package.experiment)
        self.statistics.stores += 1
        self._touch(key)
        if result.tarball is not None and self.artifact_store is not None:
            self.artifact_store.store(result.tarball, label=self.ARTIFACT_LABEL)
        return key

    def merge_from(self, other: "BuildCache", journal: bool = True) -> int:
        """Replay *other*'s entries into this cache; returns how many were new.

        This is the shard-merge primitive of the sharded execution backend:
        each shard returns a private cache restored from its own journal
        segments, and merging is a *replay*, not new bookkeeping — the
        content-addressed keys make it idempotent.  An entry already present
        here is left untouched (donor attribution included), so merging a
        shard whose work the parent cell pass already stored is a no-op.
        The statistics are deliberately not merged: the parent's counters
        keep describing the parent's own lookups, which is what keeps a
        sharded campaign's cache statistics bit-identical to the simulated
        backend's.

        When this cache is synced to a mounted journal (it was restored
        from, or last persisted into, a storage namespace nobody else has
        written since), the merged entries are appended to that journal
        *immediately* — a daemon restart between the shard merge and the
        next explicit :meth:`persist_to` loses nothing.  A cache that never
        synced (or whose journal another writer bumped) keeps the old
        behaviour: the entries stay unknown to the journal bookkeeping and
        the next :meth:`persist_to` appends them.  Pass ``journal=False``
        to force the deferred path.
        """
        merged = []
        for key in sorted(set(other._entries) - set(self._entries)):
            entry = other._entries[key]
            self._entries[key] = entry
            owner = other._owners.get(key)
            if owner:
                self._owners[key] = owner
            shared = other._shared_counts.get(key, 0)
            if shared:
                self._shared_counts[key] = shared
            self._touch(key)
            if entry.tarball is not None and self.artifact_store is not None:
                self.artifact_store.store(entry.tarball, label=self.ARTIFACT_LABEL)
            merged.append(key)
        if journal and merged:
            self._journal_merged_entries(merged)
        return len(merged)

    def _journal_merged_entries(self, keys: List[str]) -> int:
        """Append freshly merged entries to the synced journal, if safe.

        Safe means: this cache is synced to a journal namespace whose epoch
        nobody bumped since (the same condition the fast path of
        :meth:`persist_to` uses) and no repair is pending.  Anything else
        defers to the next persist — appending to a foreign or stale
        journal could interleave two lineages.  The epoch is deliberately
        *not* bumped here: the append extends this cache's own lineage, so
        a later :meth:`persist_to` into the same namespace still fast-paths
        (and writes the entries exactly once — they are marked persisted).
        """
        namespace = self._synced_namespace
        if namespace is None or self._journal_dirty:
            return 0
        if self._journal_epoch(namespace) != self._synced_epoch:
            return 0
        journal = AppendOnlyJournal(namespace, self.JOURNAL_PREFIX)
        appended = 0
        for key in keys:
            entry = self._entries.get(key)
            if entry is None or key in self._persisted:
                continue
            self._persisted[key] = journal.append(self._entry_record(key, entry))
            self._persisted_shared[key] = self._shared_counts.get(key, 0)
            self._persist_artifact(namespace, entry)
            appended += 1
        return appended

    def contains(
        self, package: SoftwarePackage, configuration: EnvironmentConfiguration
    ) -> bool:
        """True when a (still valid) entry exists; does not touch the counters."""
        entry = self._entries.get(package_identity_digest(package, configuration))
        return entry is not None and not self._artifact_gone(entry)

    def clear(self) -> None:
        """Drop every entry (the statistics are kept).

        Entries already persisted stay known to the journal bookkeeping, so
        the next :meth:`persist_to` appends their tombstones.
        """
        self._entries.clear()
        self._recency.clear()
        self._owners.clear()
        self._shared_counts.clear()

    def _evict(self, key: str) -> None:
        del self._entries[key]
        self._recency.pop(key, None)
        self._owners.pop(key, None)
        self._shared_counts.pop(key, None)
        self.statistics.evictions += 1

    # -- size accounting -----------------------------------------------------
    @staticmethod
    def entry_size_bytes(entry: BuildResult) -> int:
        """Persisted footprint of one entry: its document plus its tarball."""
        document_bytes = len(
            json.dumps(entry.to_dict(), sort_keys=True).encode("utf-8")
        )
        tarball_bytes = 0 if entry.tarball is None else entry.tarball.size_bytes
        return document_bytes + tarball_bytes

    def total_size_bytes(self) -> int:
        """Persisted footprint of the whole cache (documents plus tarballs)."""
        return sum(self.entry_size_bytes(entry) for entry in self._entries.values())

    def enforce_budget(self, max_bytes: int) -> int:
        """Evict entries until the cache fits *max_bytes*, sparing donors.

        Eviction is donor-aware: entries no *other* experiment ever reused
        go first (lowest per-entry shared-hit count), and among equally
        shared entries the least-recently-hit one goes first — so the
        cross-experiment donors that warm-start other installations survive
        the budget longest.  Ties in the recency stamps (possible only for
        entries never touched since a restore) fall back to the entry key,
        so eviction order is deterministic.  Returns the number of evicted
        entries; evictions are counted in :attr:`statistics` and tombstoned
        in the journal by the next :meth:`persist_to`.
        """
        if max_bytes < 0:
            raise StorageError("a cache size budget cannot be negative")
        evicted = 0
        total = self.total_size_bytes()
        for key in sorted(
            self._entries,
            key=lambda key: (
                self._shared_counts.get(key, 0),
                self._recency.get(key, 0),
                key,
            ),
        ):
            if total <= max_bytes:
                break
            total -= self.entry_size_bytes(self._entries[key])
            self._evict(key)
            evicted += 1
        return evicted

    # -- cross-campaign persistence (append-only journal) ---------------------
    def persist_to(
        self, storage: CommonStorage, max_bytes: Optional[int] = None
    ) -> int:
        """Append the changes since the last persist to the journal.

        One ``journal_<seq>`` record is appended per entry that is new since
        the last persist, one tombstone record per entry evicted since, and
        one superseding record per entry whose shared-hit count moved (so a
        restored cache keeps its donor-aware eviction order) — existing
        records are never rewritten, so repeated campaigns against the same
        storage write O(changes) documents, not O(cache).
        Tarball payloads travel alongside as content-addressed
        ``artifact_<digest>`` documents; the cumulative statistics document
        is replaced on every persist, so cross-campaign accounting survives
        a restart.

        With *max_bytes*, the live cache is first brought under the size
        budget by evicting least-recently-hit entries (their tombstones are
        part of the same persist).  A cache that has never synced with the
        target journal — or whose last restore recovered from a corrupted
        record — rewrites the journal wholesale instead; and once the
        journal's tombstones would outnumber its live entries, the persist
        auto-compacts (see :meth:`compact`), so churn under a tight budget
        cannot grow the persisted journal without bound.  Returns the
        number of newly journalled entries.
        """
        if max_bytes is not None:
            self.enforce_budget(max_bytes)
        namespace = storage.create_namespace(self.NAMESPACE)
        self._evict_dangling()
        journal = AppendOnlyJournal(namespace, self.JOURNAL_PREFIX)
        if self._journal_out_of_sync(namespace, journal):
            # Either the journal needs repair after a corrupted-record
            # recovery, or it belongs to a different cache lineage than this
            # instance (a never-synced cache, or a persist into a storage
            # other than the one restored from): the live state is
            # authoritative, rewrite from it.
            return self._rewrite_journal(namespace)
        pending_tombstones = set(self._persisted) - set(self._entries)
        if self._journal_tombstones + len(pending_tombstones) > len(self._entries):
            # Auto-compaction: more dead records than live ones — rewriting
            # is cheaper than letting the journal grow with history.
            return self._rewrite_journal(namespace)
        appended = 0
        for key in sorted(pending_tombstones):
            journal.append({"type": "tombstone", "cache_key": key})
            del self._persisted[key]
            self._persisted_shared.pop(key, None)
            self._journal_tombstones += 1
        for key in sorted(set(self._entries) - set(self._persisted)):
            entry = self._entries[key]
            self._persisted[key] = journal.append(self._entry_record(key, entry))
            self._persisted_shared[key] = self._shared_counts.get(key, 0)
            self._persist_artifact(namespace, entry)
            appended += 1
        for key in sorted(set(self._entries) & set(self._persisted)):
            # An already-journalled entry whose shared-hit count moved since
            # (a cross-experiment donation happened after its record was
            # written) is re-journalled: the later record supersedes the
            # earlier one on replay, so a restored cache's donor-aware
            # eviction still knows its proven donors.
            if self._shared_counts.get(key, 0) == self._persisted_shared.get(key, 0):
                continue
            self._persisted[key] = journal.append(
                self._entry_record(key, self._entries[key])
            )
            self._persisted_shared[key] = self._shared_counts.get(key, 0)
        namespace.put(self.STATISTICS_KEY, self.statistics.as_dict())
        self._mark_synced(namespace)
        return appended

    def compact(
        self, storage: CommonStorage, max_bytes: Optional[int] = None
    ) -> int:
        """Rewrite the journal from the live state.

        Compaction drops every tombstone, every superseded record and every
        orphaned artifact payload, leaving exactly one entry record per live
        cache entry — the operation that keeps a long-lived journal's size
        proportional to the cache instead of its history.  With *max_bytes*,
        the live cache is brought under the budget first, so the rewritten
        journal fits it too.  Returns the number of entry records written.
        """
        if max_bytes is not None:
            self.enforce_budget(max_bytes)
        namespace = storage.create_namespace(self.NAMESPACE)
        self._evict_dangling()
        return self._rewrite_journal(namespace)

    @classmethod
    def _journal_epoch(cls, namespace) -> int:
        """The journal's write counter (0 for a fresh or foreign journal)."""
        if not namespace.exists(cls.EPOCH_KEY):
            return 0
        document = namespace.get(cls.EPOCH_KEY)
        if not isinstance(document, dict):
            return 0
        try:
            return int(document.get("epoch", 0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 0

    def _mark_synced(self, namespace) -> None:
        """Stamp the journal with a bumped epoch and remember it."""
        epoch = self._journal_epoch(namespace) + 1
        namespace.put(self.EPOCH_KEY, {"epoch": epoch})
        self._synced_namespace = namespace
        self._synced_epoch = epoch

    def _journal_out_of_sync(
        self, namespace, journal: AppendOnlyJournal
    ) -> bool:
        """True when appending to this journal would be unsafe."""
        if self._journal_dirty:
            return True
        if (
            namespace is self._synced_namespace
            and self._journal_epoch(namespace) == self._synced_epoch
        ):
            # Same namespace object AND nobody else wrote to it since this
            # cache last synced: the full lineage scan below is redundant,
            # repeated persists stay O(new entries).
            return False
        if not self._persisted:
            # Never synced: any existing records belong to someone else.
            return len(journal) > 0
        # A new target namespace: every record this cache believes it wrote
        # must be there AND carry the expected cache key — bare existence is
        # not enough, since a different storage's journal can overlap in
        # sequence numbers.
        for key, sequence in self._persisted.items():
            record_key = journal.key_for(sequence)
            if not namespace.exists(record_key):
                return True
            document = namespace.get(record_key)
            if (
                not isinstance(document, dict)
                or document.get("type") != "entry"
                or document.get("cache_key") != key
            ):
                return True
        return False

    def _evict_dangling(self) -> None:
        """Evict entries whose artifact vanished from the store.

        Persisting them would journal dangling digests; evicting makes them
        tombstones (or keeps them out of the rewrite) instead.
        """
        for key in [
            key
            for key, entry in self._entries.items()
            if self._artifact_gone(entry)
        ]:
            self._evict(key)

    def _entry_record(self, key: str, entry: BuildResult) -> Dict[str, object]:
        return {
            "type": "entry",
            "cache_key": key,
            "stored_by": self._owners.get(key, ""),
            # Shared-hit count at journalling time, so a restored cache's
            # donor-aware eviction still knows its proven donors.
            "shared_hits": self._shared_counts.get(key, 0),
            "result": entry.to_dict(),
        }

    def _persist_artifact(self, namespace, entry: BuildResult) -> None:
        if entry.tarball is not None:
            namespace.put(
                f"{self.ARTIFACT_PREFIX}{entry.tarball.digest}",
                entry.tarball.to_dict(),
            )

    def _rewrite_journal(self, namespace) -> int:
        journal = AppendOnlyJournal(namespace, self.JOURNAL_PREFIX)
        journal.clear()
        for key in namespace.keys(prefix=self.ARTIFACT_PREFIX):
            namespace.delete(key)
        for key in namespace.keys(prefix=self.LEGACY_ENTRY_PREFIX):
            # Pre-journal snapshot documents: superseded by the rewrite.
            namespace.delete(key)
        self._persisted = {}
        self._persisted_shared = {}
        written = 0
        for key in sorted(self._entries):
            entry = self._entries[key]
            self._persisted[key] = journal.append(self._entry_record(key, entry))
            self._persisted_shared[key] = self._shared_counts.get(key, 0)
            self._persist_artifact(namespace, entry)
            written += 1
        namespace.put(self.STATISTICS_KEY, self.statistics.as_dict())
        self._journal_dirty = False
        self._journal_tombstones = 0
        self._mark_synced(namespace)
        return written

    @classmethod
    def restore_from(
        cls, storage: CommonStorage, artifact_store: Optional[ArtifactStore] = None
    ) -> "BuildCache":
        """Warm-start a cache by replaying a journal written by :meth:`persist_to`.

        Records are replayed in append order: entry records install (or
        supersede) an entry, tombstones remove it.  A corrupted record is
        skipped — safe for a content-addressed cache, where an entry can at
        worst be lost (a rebuild) or resurrected (it is never wrong) — and
        the restored cache rewrites the repaired journal on its next
        persist.  Tarballs travelling with the journal are re-materialised
        into *artifact_store*; an entry whose artifact digest is neither
        already present in the store nor part of the journal is evicted on
        restore (and counted in ``statistics.evictions``).  Entries of a
        pre-journal snapshot (the retired wholesale format) are dropped as
        evictions: their keys predate the experiment-agnostic digest and
        could never be hit again.  The source *storage* is never modified —
        it may belong to another live installation.  A storage without a
        ``buildcache`` namespace restores to an empty cache.
        """
        cache = cls(artifact_store)
        if cls.NAMESPACE not in storage.namespaces():
            return cache
        namespace = storage.namespace(cls.NAMESPACE)
        if namespace.exists(cls.STATISTICS_KEY):
            cache.statistics = CacheStatistics.from_dict(
                namespace.get(cls.STATISTICS_KEY)  # type: ignore[arg-type]
            )
        journal = AppendOnlyJournal(namespace, cls.JOURNAL_PREFIX)
        live: Dict[str, Tuple[int, str, int, BuildResult]] = {}
        for _key in namespace.keys(prefix=cls.LEGACY_ENTRY_PREFIX):
            # Pre-journal wholesale snapshot: its entries are keyed by the
            # retired pre-content-addressing digest, so they could never be
            # hit again — drop them as evictions; the dirty flag makes the
            # next persist delete the dead documents.
            cache.statistics.evictions += 1
            cache._journal_dirty = True
        for sequence, document in journal.records():
            record = cls._parse_journal_record(document)
            if record is None:
                # Corrupted record: skip it and keep replaying — benign for
                # a content-addressed cache (an entry can at worst be lost,
                # costing a rebuild, or resurrected — it is never wrong) —
                # and repair the journal on the next persist.
                cache._journal_dirty = True
                continue
            kind, key, stored_by, shared_hits, result = record
            if kind == "tombstone":
                live.pop(key, None)
                cache._journal_tombstones += 1
            else:
                live[key] = (sequence, stored_by, shared_hits, result)
        for key in sorted(live):
            sequence, stored_by, shared_hits, result = live[key]
            if not cache._materialise_artifact(result, namespace):
                cache.statistics.evictions += 1
                # The dangling record stays in the journal; flag it for the
                # next persist's compaction rewrite instead of re-evicting
                # it on every future restore.
                cache._journal_dirty = True
                continue
            cache._entries[key] = result
            if stored_by:
                cache._owners[key] = stored_by
            if shared_hits:
                cache._shared_counts[key] = shared_hits
            cache._persisted[key] = sequence
            cache._persisted_shared[key] = shared_hits
        # Restore never mutates the source, so remember its epoch as-is: a
        # later persist into the same namespace fast-paths only while no
        # other writer has bumped it.
        cache._synced_namespace = namespace
        cache._synced_epoch = cache._journal_epoch(namespace)
        return cache

    @staticmethod
    def _parse_journal_record(
        document: object,
    ) -> Optional[Tuple[str, str, str, int, Optional[BuildResult]]]:
        """Decode one journal record, or None if it is corrupted."""
        if not isinstance(document, dict):
            return None
        try:
            kind = document["type"]
            key = str(document["cache_key"])
            if kind == "tombstone":
                return ("tombstone", key, "", 0, None)
            if kind != "entry":
                return None
            stored_by = str(document.get("stored_by", ""))
            try:
                # Pre-donor-aware records lack the count; degrade to zero.
                shared_hits = int(document.get("shared_hits", 0))
            except (TypeError, ValueError):
                shared_hits = 0
            result = BuildResult.from_dict(document["result"])
        except (KeyError, TypeError, ValueError, AttributeError):
            return None
        return ("entry", key, stored_by, shared_hits, result)

    @classmethod
    def journal_status(cls, storage: CommonStorage) -> Dict[str, int]:
        """Size and composition of the persisted journal in *storage*.

        Returns record counts (total / entry / tombstone), the number of
        artifact payload documents and the summed JSON footprint in bytes —
        the numbers the status pages and ``cache-stats`` CLI report, and the
        signal that a compaction is due (tombstones piling up).  The byte
        accounting re-serialises every document, so the call is O(journal);
        the CLI invokes it once per run, right before ``storage.persist``
        does strictly more serialisation work anyway.
        """
        status = {"records": 0, "entries": 0, "tombstones": 0, "artifacts": 0,
                  "bytes": 0}
        if cls.NAMESPACE not in storage.namespaces():
            return status
        namespace = storage.namespace(cls.NAMESPACE)
        journal = AppendOnlyJournal(namespace, cls.JOURNAL_PREFIX)
        for _sequence, document in journal.records():
            status["records"] += 1
            kind = document.get("type") if isinstance(document, dict) else None
            if kind == "tombstone":
                status["tombstones"] += 1
            elif kind == "entry":
                status["entries"] += 1
            status["bytes"] += len(
                json.dumps(document, sort_keys=True).encode("utf-8")
            )
        for key in namespace.keys(prefix=cls.ARTIFACT_PREFIX):
            status["artifacts"] += 1
            status["bytes"] += len(
                json.dumps(namespace.get(key), sort_keys=True).encode("utf-8")
            )
        return status

    def _materialise_artifact(self, entry: BuildResult, namespace) -> bool:
        """Ensure the entry's tarball exists in the artifact store.

        Returns False when the digest can no longer be materialised — the
        restore-time equivalent of the lookup-time eviction.
        """
        if entry.tarball is None:
            return True
        if self.artifact_store is None:
            # No backing store to check against; mirror the lookup-time
            # semantics, where a store-less cache never evicts.
            return True
        if self.artifact_store.exists(entry.tarball.digest):
            return True
        artifact_key = f"{self.ARTIFACT_PREFIX}{entry.tarball.digest}"
        if not namespace.exists(artifact_key):
            return False
        tarball = Tarball.from_dict(namespace.get(artifact_key))
        self.artifact_store.store(tarball, label=self.ARTIFACT_LABEL)
        return True

    # -- internals -----------------------------------------------------------
    def _artifact_gone(self, entry: BuildResult) -> bool:
        return (
            entry.tarball is not None
            and self.artifact_store is not None
            and not self.artifact_store.exists(entry.tarball.digest)
        )

    @staticmethod
    def _replay(entry: BuildResult, package: SoftwarePackage) -> BuildResult:
        # Fresh list containers so a caller mutating its copy cannot corrupt
        # the cached entry; the tarball is immutable and shared.  The result
        # is rebound to the *requesting* package: a cross-experiment hit
        # must carry the requester's own package (same content identity,
        # different owning experiment), or the replay would leak the donor's
        # attribution into the requester's run documents.
        return BuildResult(
            package=package,
            configuration_key=entry.configuration_key,
            status=entry.status,
            diagnostics=list(entry.diagnostics),
            issues=list(entry.issues),
            tarball=entry.tarball,
            build_seconds=entry.build_seconds,
        )


class CachingPackageBuilder(PackageBuilder):
    """A :class:`PackageBuilder` that consults a :class:`BuildCache` first.

    ``build_inventory`` is inherited: it orders the packages and handles
    dependency skips, while every actual compilation goes through the cached
    :meth:`build_package` here (delegated to the wrapped *base* builder on a
    miss).  Skipped results are not cached — they cost nothing to recompute
    and depend on campaign-local dependency state.

    Limitations: the wrapper assumes the builds it caches are deterministic
    pure functions of (package content, configuration), like every builder in
    this code base.  A base builder with a *stateful* ``build_package`` (e.g.
    a fail-once fault injector) would have its first answer replayed forever,
    and a base overriding ``build_inventory`` itself keeps that override only
    when called directly, not through this wrapper — do not layer the cache
    over such builders.
    """

    def __init__(
        self,
        cache: BuildCache,
        base: Optional[PackageBuilder] = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        super().__init__(checker=base.checker if base is not None else None)
        self.cache = cache
        # Misses are delegated to the wrapped builder, so a PackageBuilder
        # subclass with its own build_package keeps its behaviour when the
        # campaign layers the cache over it.
        self.base = base
        # Telemetry is observation only: the probe/hit/miss sequence (and
        # therefore every CacheStatistics counter) is identical with or
        # without it.  Probes run in the deterministic cell pass, so their
        # spans carry category "cell" and join the parity-pinned sequence.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def build_package(
        self,
        package: SoftwarePackage,
        configuration: EnvironmentConfiguration,
    ) -> BuildResult:
        with self.telemetry.tracer.span(
            "cache_probe", category="cell", package=package.name
        ):
            cached = self.cache.lookup(package, configuration)
        if cached is not None:
            self.telemetry.metrics.increment("cache_hits_total")
            return cached
        self.telemetry.metrics.increment("cache_misses_total")
        with self.telemetry.tracer.span(
            "cache_miss_build", category="cell", package=package.name
        ):
            if self.base is not None:
                result = self.base.build_package(package, configuration)
            else:
                result = super().build_package(package, configuration)
        self.cache.store(package, configuration, result)
        return result


__all__ = [
    "package_identity_digest",
    "build_cache_key",
    "CacheStatistics",
    "BuildCache",
    "CachingPackageBuilder",
]
