"""A simulated worker pool dispatching the campaign DAG onto client slots.

The sp-system clients are small virtual machines; their
:class:`~repro.virtualization.resources.ResourceProfile` supplies the slots
(one task per CPU core).  The pool runs a deterministic event-driven
simulation: ready tasks are assigned by the selected
:class:`SchedulingPolicy` to the lowest-indexed worker with a free core,
time jumps to the next task completion or injected worker failure, and the
makespan is compared against the one-slot sequential execution.

Three policies ship with the pool: FIFO (today's DAG insertion order),
longest-task-first, and critical-path priority (tasks heading the longest
remaining dependency chain go first).  A policy only reorders the *ready*
queue — dependencies always gate dispatch — so it changes the timeline, never
the scientific output.  An optional deadline turns the schedule into a
deadline report: :meth:`PoolSchedule.late_cells` names the matrix cells that
finished after it.

Failure injection is first class: a :class:`WorkerFailure` kills a worker at
a simulated time, its in-flight tasks are requeued and retried on the
survivors, and a campaign with no surviving workers raises
:class:`~repro._common.SchedulingError` instead of deadlocking.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro._common import SchedulingError
from repro.scheduler.dag import CampaignDAG, CampaignTask
from repro.scheduler.lifecycle import (
    EVENT_DEADLINE_EXCEEDED,
    EarlyStopRequested,
    PluginRegistry,
)
from repro.virtualization.resources import (
    VALIDATION_VM_PROFILE,
    ResourceAccountant,
    ResourceProfile,
)

#: Resources one campaign task reserves on its worker: one core, and small
#: enough memory/disk demands that the core count is the binding constraint.
TASK_CPU_CORES = 1
TASK_MEMORY_GB = 1.0
TASK_DISK_GB = 5.0


def effective_slots_per_worker(profile: ResourceProfile) -> int:
    """Concurrent campaign tasks one worker of *profile* really runs.

    One slot per CPU core, unless memory or disk is the binding constraint
    — the same arithmetic the dispatch paths use via
    :meth:`~repro.virtualization.resources.ResourceAccountant.can_accommodate`,
    so reported ``slots_per_worker`` (and therefore ``total_slots`` and
    ``utilisation``) always describes the capacity that actually dispatched.
    """
    return min(
        profile.cpu_cores // TASK_CPU_CORES,
        int(profile.memory_gb // TASK_MEMORY_GB),
        int(profile.disk_gb // TASK_DISK_GB),
    )


@dataclass(frozen=True)
class WorkerFailure:
    """An injected failure: worker *worker_index* dies at *at_seconds*."""

    worker_index: int
    at_seconds: float

    def __post_init__(self) -> None:
        if self.at_seconds < 0:
            raise SchedulingError("a worker cannot fail before the campaign starts")


class SchedulingPolicy:
    """Decides which ready task a free worker slot picks up next.

    A policy maps each task to a priority tuple; the pool keeps the ready
    queue as a min-heap of ``(priority, dag_order, task_id)``, so every
    policy is deterministic — ties always fall back to DAG insertion order.
    Policies only see *ready* tasks (dependencies already satisfied), which
    is why they can never change what gets executed, only when.
    """

    #: Registry name, also used by the CLI ``--policy`` flag.
    name = "base"

    def prepare(self, dag: CampaignDAG) -> None:
        """Precompute any per-DAG state; called once per pool execution."""

    def priority(self, task: CampaignTask) -> Tuple:
        """Priority tuple of *task*; smaller sorts (and so dispatches) first."""
        raise NotImplementedError


class FifoPolicy(SchedulingPolicy):
    """DAG insertion order — the sequential path's order, today's default."""

    name = "fifo"

    def priority(self, task: CampaignTask) -> Tuple:
        return ()


class LongestTaskFirstPolicy(SchedulingPolicy):
    """Longest ready task first — classic LPT to even out worker finish times."""

    name = "longest-first"

    def priority(self, task: CampaignTask) -> Tuple:
        return (-task.duration_seconds,)


class CriticalPathPolicy(SchedulingPolicy):
    """Tasks heading the longest remaining dependency chain go first.

    The priority of a task is the length of the longest chain from the task
    (inclusive) to any sink of the DAG — its *downstream* critical path.
    Dispatching chain heads early keeps the pool from discovering late that
    the makespan is gated by an analysis chain it left for last.
    """

    name = "critical-path"

    def __init__(self) -> None:
        self._downstream: Dict[str, float] = {}

    def prepare(self, dag: CampaignDAG) -> None:
        # Tasks are stored dependencies-first, so a reverse sweep sees every
        # dependent before the tasks it depends on.
        self._downstream = {}
        dependents = dag.dependents()
        for task in reversed(dag.tasks()):
            self._downstream[task.task_id] = task.duration_seconds + max(
                (self._downstream[dependent] for dependent in dependents[task.task_id]),
                default=0.0,
            )

    def priority(self, task: CampaignTask) -> Tuple:
        return (-self._downstream.get(task.task_id, task.duration_seconds),)


#: The scheduling policies selectable by name (CLI ``--policy``).
SCHEDULING_POLICIES = {
    policy.name: policy
    for policy in (FifoPolicy, LongestTaskFirstPolicy, CriticalPathPolicy)
}


def scheduling_policy(policy: Union[str, SchedulingPolicy, None]) -> SchedulingPolicy:
    """Resolve a policy instance from a name, an instance, or None (FIFO)."""
    if policy is None:
        return FifoPolicy()
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return SCHEDULING_POLICIES[policy]()
    except KeyError:
        known = ", ".join(sorted(SCHEDULING_POLICIES))
        raise SchedulingError(
            f"unknown scheduling policy {policy!r} (known: {known})"
        ) from None


@dataclass(frozen=True)
class TaskAssignment:
    """One completed placement of a task on a worker."""

    task_id: str
    worker_index: int
    start_seconds: float
    end_seconds: float
    attempt: int


@dataclass
class PoolSchedule:
    """The simulated timeline the pool produced for one campaign DAG."""

    n_workers: int
    slots_per_worker: int
    makespan_seconds: float
    sequential_seconds: float
    critical_path_seconds: float
    assignments: List[TaskAssignment] = field(default_factory=list)
    n_retries: int = 0
    failed_workers: Tuple[int, ...] = ()
    busy_seconds_per_worker: Dict[int, float] = field(default_factory=dict)
    peak_concurrent_tasks: int = 0
    available_slot_seconds: float = 0.0
    policy: str = FifoPolicy.name
    deadline_seconds: Optional[float] = None
    cell_end_seconds: Dict[int, float] = field(default_factory=dict)
    #: Execution backend that produced the timeline ("simulated" timestamps
    #: from the event simulation, "threads"/"processes"/"sharded" measured
    #: wall-clock seconds).
    backend: str = "simulated"
    #: Shard count of a sharded campaign (0 for unsharded backends).  On the
    #: sharded backend every shard is one worker process running its cells'
    #: builds sequentially, so ``n_workers`` equals the shard count and
    #: ``slots_per_worker`` is 1.
    shards: int = 0

    @property
    def total_slots(self) -> int:
        """Concurrent task capacity of the healthy pool."""
        return self.n_workers * self.slots_per_worker

    @property
    def speedup(self) -> float:
        """Sequential makespan over pooled makespan."""
        if self.makespan_seconds <= 0:
            return 1.0
        return self.sequential_seconds / self.makespan_seconds

    @property
    def utilisation(self) -> float:
        """Busy slot-seconds over available slot-seconds.

        A worker that died mid-campaign only counts as available until its
        failure time, so the metric stays meaningful for failure-injection
        campaigns.
        """
        if self.available_slot_seconds <= 0:
            return 0.0
        return sum(self.busy_seconds_per_worker.values()) / self.available_slot_seconds

    def assignments_for_worker(self, worker_index: int) -> List[TaskAssignment]:
        """Completed assignments of one worker, in completion order."""
        return [
            assignment for assignment in self.assignments
            if assignment.worker_index == worker_index
        ]

    # -- deadline reporting -------------------------------------------------
    @property
    def met_deadline(self) -> bool:
        """True when the whole campaign finished by the deadline (or none set)."""
        return self.deadline_seconds is None or (
            self.makespan_seconds <= self.deadline_seconds
        )

    def late_cells(self, deadline_seconds: Optional[float] = None) -> List[int]:
        """Indices of matrix cells whose last task finished after the deadline.

        Uses the schedule's own deadline when *deadline_seconds* is omitted;
        without either, no cell is late.
        """
        deadline = (
            deadline_seconds if deadline_seconds is not None else self.deadline_seconds
        )
        if deadline is None:
            return []
        return sorted(
            cell_index
            for cell_index, end_seconds in self.cell_end_seconds.items()
            if end_seconds > deadline
        )


class SimulatedWorkerPool:
    """Executes a campaign DAG over N simulated sp-system client workers."""

    def __init__(
        self,
        n_workers: int = 1,
        profile: ResourceProfile = VALIDATION_VM_PROFILE,
        failures: Sequence[WorkerFailure] = (),
        policy: Union[str, SchedulingPolicy, None] = None,
        deadline_seconds: Optional[float] = None,
        lifecycle: Optional[PluginRegistry] = None,
        campaign_id: Optional[str] = None,
    ) -> None:
        if n_workers < 1:
            raise SchedulingError("a worker pool needs at least one worker")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise SchedulingError("a campaign deadline must be positive")
        self.n_workers = n_workers
        self.profile = profile
        self.policy = scheduling_policy(policy)
        self.deadline_seconds = deadline_seconds
        #: Lifecycle bus notified once when simulated time passes the
        #: deadline; an abort policy's EarlyStopRequested propagates out of
        #: :meth:`execute` as a SchedulingError.
        self.lifecycle = lifecycle
        self.campaign_id = campaign_id
        for failure in failures:
            if not 0 <= failure.worker_index < n_workers:
                raise SchedulingError(
                    f"failure targets unknown worker {failure.worker_index}"
                )
        self.failures = sorted(
            failures, key=lambda f: (f.at_seconds, f.worker_index)
        )
        self.accountants: List[ResourceAccountant] = []

    def execute(self, dag: CampaignDAG) -> PoolSchedule:
        """Simulate dispatching *dag* and return the resulting timeline."""
        # Fresh accountants per execution: cumulative CPU-seconds from one
        # run must not leak into the next schedule's busy/utilisation numbers.
        self.accountants = [
            ResourceAccountant(self.profile) for _ in range(self.n_workers)
        ]
        tasks = dag.tasks()
        order_index = {task.task_id: index for index, task in enumerate(tasks)}
        dependents = dag.dependents()
        remaining_deps = {
            task.task_id: set(task.dependencies) for task in tasks
        }
        # Ready-queue entries are (policy priority, DAG order, task id): the
        # policy decides, DAG insertion order breaks every tie, so any policy
        # yields one deterministic timeline.
        self.policy.prepare(dag)

        def ready_entry(task_id: str) -> Tuple[Tuple, int, str]:
            return (
                self.policy.priority(dag.get(task_id)),
                order_index[task_id],
                task_id,
            )

        ready: List[Tuple[Tuple, int, str]] = [
            ready_entry(task.task_id) for task in tasks if not task.dependencies
        ]
        heapq.heapify(ready)
        pending_failures = list(self.failures)
        alive = [True] * self.n_workers
        # task_id -> (worker, start, attempt); end time kept in a heap.
        running: Dict[str, Tuple[int, float, int]] = {}
        end_heap: List[Tuple[float, int, str]] = []
        attempts: Dict[str, int] = {}
        assignments: List[TaskAssignment] = []
        death_times: Dict[int, float] = {}
        completed = 0
        retries = 0
        peak = 0
        now = 0.0
        deadline_notified = False

        def try_assign() -> None:
            nonlocal peak
            while ready:
                worker = next(
                    (
                        index for index in range(self.n_workers)
                        if alive[index] and self.accountants[index].can_accommodate(
                            TASK_CPU_CORES, TASK_MEMORY_GB, TASK_DISK_GB
                        )
                    ),
                    None,
                )
                if worker is None:
                    return
                task_id = heapq.heappop(ready)[2]
                task = dag.get(task_id)
                attempts[task_id] = attempts.get(task_id, 0) + 1
                self.accountants[worker].reserve(
                    task_id, TASK_CPU_CORES, TASK_MEMORY_GB, TASK_DISK_GB
                )
                running[task_id] = (worker, now, attempts[task_id])
                heapq.heappush(
                    end_heap, (now + task.duration_seconds, order_index[task_id], task_id)
                )
                peak = max(peak, len(running))

        while completed < len(tasks):
            # Kill workers whose failure time has arrived BEFORE handing out
            # new work: a worker must never receive a task at (or after) the
            # instant it dies, and a completion at exactly the failure time
            # has already been processed by the branch below.
            while pending_failures and pending_failures[0].at_seconds <= now:
                failure = pending_failures.pop(0)
                victim = failure.worker_index
                if not alive[victim]:
                    continue
                alive[victim] = False
                death_times[victim] = failure.at_seconds
                for task_id, (worker, start, _attempt) in sorted(
                    running.items(), key=lambda item: order_index[item[0]]
                ):
                    if worker != victim:
                        continue
                    # The partial execution is lost; the task is retried from
                    # scratch on a surviving worker.
                    self.accountants[worker].release(
                        task_id, cpu_seconds_used=max(0.0, now - start)
                    )
                    del running[task_id]
                    retries += 1
                    heapq.heappush(ready, ready_entry(task_id))
                end_heap = [
                    entry for entry in end_heap if entry[2] in running
                ]
                heapq.heapify(end_heap)
            try_assign()
            if not running:
                if not any(alive):
                    raise SchedulingError(
                        "every worker of the pool has failed; "
                        f"{len(tasks) - completed} task(s) cannot be scheduled"
                    )
                # Alive workers but nothing running and nothing assignable:
                # the DAG references work that can never become ready.
                raise SchedulingError(
                    "scheduler stalled with "
                    f"{len(tasks) - completed} unfinished task(s)"
                )
            next_end = end_heap[0][0]
            if pending_failures and pending_failures[0].at_seconds < next_end:
                # Advance to the failure; the sweep at the top of the loop
                # performs the kill before any reassignment.
                now = pending_failures[0].at_seconds
                continue
            # Drain every completion due at this instant in one go, so a
            # worker failure at the same timestamp cannot requeue a task
            # that had in fact finished.
            now = next_end
            due: List[str] = []
            while end_heap and end_heap[0][0] == now:
                due.append(heapq.heappop(end_heap)[2])
            for task_id in due:
                worker, start, attempt = running.pop(task_id)
                self.accountants[worker].release(task_id, cpu_seconds_used=now - start)
                assignments.append(
                    TaskAssignment(
                        task_id=task_id,
                        worker_index=worker,
                        start_seconds=start,
                        end_seconds=now,
                        attempt=attempt,
                    )
                )
                completed += 1
                for dependent in dependents[task_id]:
                    remaining = remaining_deps[dependent]
                    remaining.discard(task_id)
                    if not remaining and dependent not in running:
                        heapq.heappush(ready, ready_entry(dependent))
            # One deadline notification per execution, at the first drained
            # instant past the deadline — simulated clock, so the emission
            # point (and therefore any abort) is fully deterministic.
            if (
                self.deadline_seconds is not None
                and self.lifecycle is not None
                and not deadline_notified
                and now > self.deadline_seconds
            ):
                deadline_notified = True
                try:
                    self.lifecycle.emit(
                        EVENT_DEADLINE_EXCEEDED,
                        campaign_id=self.campaign_id,
                        payload={
                            "backend": "simulated",
                            "deadline_seconds": self.deadline_seconds,
                            "elapsed_seconds": now,
                        },
                    )
                except EarlyStopRequested as stop:
                    raise SchedulingError(
                        f"campaign aborted on the simulated backend: {stop} "
                        f"({len(tasks) - completed} unfinished task(s) "
                        "cancelled)"
                    ) from stop

        cell_end_seconds: Dict[int, float] = {}
        for assignment in assignments:
            cell_index = dag.get(assignment.task_id).cell_index
            cell_end_seconds[cell_index] = max(
                cell_end_seconds.get(cell_index, 0.0), assignment.end_seconds
            )
        # Report the slot count the dispatch loop really used: one per core
        # unless memory or disk is the binding constraint (the accountants
        # enforce all three).  Reporting raw cpu_cores here used to inflate
        # total_slots and available_slot_seconds — and so deflate utilisation
        # — whenever memory or disk bound the worker.
        slots_per_worker = effective_slots_per_worker(self.profile)
        return PoolSchedule(
            n_workers=self.n_workers,
            slots_per_worker=slots_per_worker,
            makespan_seconds=now,
            sequential_seconds=dag.total_seconds(),
            critical_path_seconds=dag.critical_path_seconds(),
            assignments=assignments,
            n_retries=retries,
            failed_workers=tuple(
                index for index, ok in enumerate(alive) if not ok
            ),
            busy_seconds_per_worker={
                index: accountant.total_cpu_seconds
                for index, accountant in enumerate(self.accountants)
            },
            peak_concurrent_tasks=peak,
            available_slot_seconds=sum(
                min(death_times.get(index, now), now) * slots_per_worker
                for index in range(self.n_workers)
            ),
            policy=self.policy.name,
            deadline_seconds=self.deadline_seconds,
            cell_end_seconds=cell_end_seconds,
        )


__all__ = [
    "effective_slots_per_worker",
    "WorkerFailure",
    "SchedulingPolicy",
    "FifoPolicy",
    "LongestTaskFirstPolicy",
    "CriticalPathPolicy",
    "SCHEDULING_POLICIES",
    "scheduling_policy",
    "TaskAssignment",
    "PoolSchedule",
    "SimulatedWorkerPool",
]
