"""The campaign job DAG: what a validation campaign has to execute.

Expanding a validation matrix produces, per (experiment, configuration) cell:
one build task per package (edges follow the package dependency graph),
standalone tests grouped into batches that wait for the builds, and analysis
chain steps linked sequentially.  Cells are independent of each other, which
is exactly the parallelism the worker pool exploits.

Tasks must be added dependencies-first, so the insertion order of a valid DAG
is already a topological order — the pool relies on that for deterministic
dispatch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro._common import SchedulingError


class TaskKind(enum.Enum):
    """What a campaign task does on its worker slot."""

    BUILD = "build"
    TEST_BATCH = "test-batch"
    CHAIN_STEP = "chain-step"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class CampaignTask:
    """One schedulable unit of campaign work."""

    task_id: str
    kind: TaskKind
    cell_index: int
    experiment: str
    configuration_key: str
    duration_seconds: float
    dependencies: Tuple[str, ...] = ()
    n_tests: int = 1

    def __post_init__(self) -> None:
        if self.duration_seconds < 0:
            raise SchedulingError(f"task {self.task_id!r} has negative duration")


class CampaignDAG:
    """Directed acyclic graph of campaign tasks, insertion-ordered."""

    def __init__(self) -> None:
        self._tasks: Dict[str, CampaignTask] = {}

    def add(self, task: CampaignTask) -> None:
        """Add a task; its dependencies must already be present."""
        if task.task_id in self._tasks:
            raise SchedulingError(f"task {task.task_id!r} already in the DAG")
        for dependency in task.dependencies:
            if dependency not in self._tasks:
                raise SchedulingError(
                    f"task {task.task_id!r} depends on unknown task {dependency!r}"
                )
        self._tasks[task.task_id] = task

    def get(self, task_id: str) -> CampaignTask:
        """Return the task with the given ID."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise SchedulingError(f"no task {task_id!r} in the DAG") from None

    def tasks(self) -> List[CampaignTask]:
        """All tasks in insertion (= topological) order."""
        return list(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def dependents(self) -> Dict[str, List[str]]:
        """Mapping task ID -> IDs of tasks that depend on it."""
        result: Dict[str, List[str]] = {task_id: [] for task_id in self._tasks}
        for task in self._tasks.values():
            for dependency in task.dependencies:
                result[dependency].append(task.task_id)
        return result

    def total_seconds(self) -> float:
        """Summed duration of every task: the one-slot sequential makespan."""
        return sum(task.duration_seconds for task in self._tasks.values())

    def critical_path_seconds(
        self, durations: Optional[Dict[str, float]] = None
    ) -> float:
        """Length of the longest dependency chain: the parallel lower bound.

        By default the chain is measured in the tasks' own (simulated)
        durations; *durations* substitutes another per-task duration source
        — e.g. wall-clock seconds measured by the thread backend.
        """
        finish: Dict[str, float] = {}
        longest = 0.0
        for task in self._tasks.values():
            duration = (
                task.duration_seconds
                if durations is None
                else durations.get(task.task_id, 0.0)
            )
            start = max((finish[d] for d in task.dependencies), default=0.0)
            finish[task.task_id] = start + duration
            longest = max(longest, finish[task.task_id])
        return longest

    def tasks_for_cell(self, cell_index: int) -> List[CampaignTask]:
        """All tasks of one matrix cell, in order."""
        return [task for task in self._tasks.values() if task.cell_index == cell_index]

    def counts_by_kind(self) -> Dict[str, int]:
        """How many tasks of each kind the DAG holds."""
        counts: Dict[str, int] = {}
        for task in self._tasks.values():
            counts[task.kind.value] = counts.get(task.kind.value, 0) + 1
        return counts


__all__ = ["TaskKind", "CampaignTask", "CampaignDAG"]
