"""Pluggable execution backends for campaign DAGs.

The campaign scheduler separates *what* a campaign produces from *how* its
DAG is executed.  The scientific output — run documents and catalogue
records — always comes from the deterministic cell pass, executed in the
sequential path's exact order; that is the invariant that keeps every
backend bit-identical.  What a backend decides is the campaign's wall-clock
story: how the derived task DAG is dispatched over the worker pool and what
timeline (:class:`~repro.scheduler.pool.PoolSchedule`) comes back.

Two backends ship with the registry:

* :class:`SimulatedBackend` wraps the deterministic event-driven
  :class:`~repro.scheduler.pool.SimulatedWorkerPool` — simulated
  timestamps, injectable worker failures, reproducible timelines.
* :class:`ThreadPoolBackend` really executes the DAG's tasks concurrently
  on a :class:`concurrent.futures.ThreadPoolExecutor`: build tasks run a
  genuine :class:`~repro.buildsys.builder.BuildTask` re-compilation (a pure
  function of the package content digest, digest-checked against the
  recorded result), test and chain tasks run a read-only verification
  replay of the cell's recorded jobs — all on real OS threads, with
  dependencies gating submission, the selected scheduling policy ordering
  the ready queue, and measured wall-clock seconds folded into the
  returned ``PoolSchedule``.

Backends are selected by name through :func:`execution_backend`, mirroring
:func:`~repro.scheduler.pool.scheduling_policy`.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro._common import SchedulingError
from repro.scheduler.dag import CampaignDAG
from repro.scheduler.pool import (
    TASK_CPU_CORES,
    TASK_DISK_GB,
    TASK_MEMORY_GB,
    PoolSchedule,
    SchedulingPolicy,
    SimulatedWorkerPool,
    TaskAssignment,
    WorkerFailure,
    scheduling_policy,
)
from repro.virtualization.resources import VALIDATION_VM_PROFILE, ResourceProfile

#: Payload a backend may run for one task (real work; return value ignored).
TaskPayload = Callable[[], object]


@dataclass
class ExecutionRequest:
    """Everything a backend needs to execute one campaign DAG."""

    dag: CampaignDAG
    workers: int = 1
    worker_profile: ResourceProfile = VALIDATION_VM_PROFILE
    failures: Tuple[WorkerFailure, ...] = ()
    policy: Union[str, SchedulingPolicy, None] = None
    deadline_seconds: Optional[float] = None
    #: Task ID -> real work to perform when the task executes (backends that
    #: simulate time ignore the payloads; backends that really execute run
    #: them on their worker threads).
    payloads: Mapping[str, TaskPayload] = field(default_factory=dict)


class ExecutionBackend:
    """Executes a campaign DAG and reports the resulting pool timeline.

    Backends never see the validation runner: by the time a backend runs,
    every cell's runs are already recorded, which is what makes the
    scientific output backend-independent by construction.
    """

    #: Registry name, also used by the CLI ``--backend`` flag.
    name = "base"

    #: True when the backend really runs task payloads (the campaign
    #: scheduler skips preparing expensive payload state, e.g. expected
    #: build digests, for backends that only simulate time).
    executes_payloads = False

    def execute(self, request: ExecutionRequest) -> PoolSchedule:
        """Execute *request* and return the timeline it produced."""
        raise NotImplementedError


class SimulatedBackend(ExecutionBackend):
    """The deterministic event-driven pool simulation (today's default)."""

    name = "simulated"

    def execute(self, request: ExecutionRequest) -> PoolSchedule:
        pool = SimulatedWorkerPool(
            request.workers,
            profile=request.worker_profile,
            failures=request.failures,
            policy=request.policy,
            deadline_seconds=request.deadline_seconds,
        )
        schedule = pool.execute(request.dag)
        schedule.backend = self.name
        return schedule


class ThreadPoolBackend(ExecutionBackend):
    """Really executes the campaign DAG on a wall-clock thread pool.

    Concurrency capacity is ``workers x slots_per_worker`` OS threads (the
    same slot arithmetic as the simulated pool); a task is submitted the
    moment its dependencies have finished and a slot is free, with the
    scheduling policy ordering the ready queue exactly as in the
    simulation.  Task payloads are the real work: build tasks re-execute
    their package compilation through a
    :class:`~repro.buildsys.builder.BuildTask` (pure functions of the
    content digest — concurrency cannot change their outcome, which the
    task's digest check enforces), while test and chain tasks replay their
    recorded jobs read-only over genuinely shared (immutable) campaign
    data.

    The returned schedule carries *measured* seconds: per-task start/end
    offsets from the campaign's start, the real makespan, and a critical
    path recomputed from the measured durations.  Those numbers differ
    from run to run — which is precisely why the determinism suite
    excludes timing fields when comparing backends.

    Worker failure injection is a feature of the simulation; requesting it
    here raises :class:`~repro._common.SchedulingError`.
    """

    name = "threads"

    executes_payloads = True

    def execute(self, request: ExecutionRequest) -> PoolSchedule:
        if request.failures:
            raise SchedulingError(
                "worker failure injection requires the simulated backend; "
                "the thread backend executes on real OS threads"
            )
        if request.workers < 1:
            raise SchedulingError("a worker pool needs at least one worker")
        if request.deadline_seconds is not None and request.deadline_seconds <= 0:
            raise SchedulingError("a campaign deadline must be positive")
        policy = scheduling_policy(request.policy)
        dag = request.dag
        tasks = dag.tasks()
        cores = request.worker_profile.cpu_cores
        # Same slot arithmetic as the simulated pool: a worker runs as many
        # concurrent tasks as its profile accommodates — normally one per
        # core, fewer when memory or disk is the binding constraint.
        slots_per_worker = min(
            cores // TASK_CPU_CORES,
            int(request.worker_profile.memory_gb // TASK_MEMORY_GB),
            int(request.worker_profile.disk_gb // TASK_DISK_GB),
        )
        if slots_per_worker < 1:
            raise SchedulingError(
                "the worker profile cannot accommodate a single campaign task"
            )
        n_slots = request.workers * slots_per_worker
        policy.prepare(dag)
        order_index = {task.task_id: index for index, task in enumerate(tasks)}
        dependents = dag.dependents()
        remaining_deps = {task.task_id: set(task.dependencies) for task in tasks}

        def ready_entry(task_id: str) -> Tuple[Tuple, int, str]:
            return (policy.priority(dag.get(task_id)), order_index[task_id], task_id)

        ready: List[Tuple[Tuple, int, str]] = [
            ready_entry(task.task_id) for task in tasks if not task.dependencies
        ]
        heapq.heapify(ready)
        free_slots = list(range(n_slots))
        heapq.heapify(free_slots)
        started_at = time.monotonic()

        def run_task(task_id: str, slot: int) -> Tuple[str, int, float, float]:
            start = time.monotonic() - started_at
            payload = request.payloads.get(task_id)
            if payload is not None:
                payload()
            return task_id, slot, start, time.monotonic() - started_at

        assignments: List[TaskAssignment] = []
        completed = 0
        peak = 0
        pending = set()
        with ThreadPoolExecutor(
            max_workers=max(n_slots, 1), thread_name_prefix="sp-campaign"
        ) as executor:
            while completed < len(tasks):
                while ready and free_slots:
                    task_id = heapq.heappop(ready)[2]
                    slot = heapq.heappop(free_slots)
                    pending.add(executor.submit(run_task, task_id, slot))
                peak = max(peak, len(pending))
                if not pending:
                    raise SchedulingError(
                        "scheduler stalled with "
                        f"{len(tasks) - completed} unfinished task(s)"
                    )
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        task_id, slot, start, end = future.result()
                    except Exception as error:
                        raise SchedulingError(
                            f"a campaign task failed on the thread backend: "
                            f"{type(error).__name__}: {error}"
                        ) from error
                    heapq.heappush(free_slots, slot)
                    assignments.append(
                        TaskAssignment(
                            task_id=task_id,
                            worker_index=slot // slots_per_worker,
                            start_seconds=start,
                            end_seconds=end,
                            attempt=1,
                        )
                    )
                    completed += 1
                    for dependent in dependents[task_id]:
                        remaining = remaining_deps[dependent]
                        remaining.discard(task_id)
                        if not remaining:
                            heapq.heappush(ready, ready_entry(dependent))
        makespan = time.monotonic() - started_at if tasks else 0.0
        # Stable report order: the wall clock decides completion order, the
        # DAG order breaks ties so repeated prints stay readable.
        assignments.sort(key=lambda a: (a.end_seconds, order_index[a.task_id]))
        measured = {a.task_id: a.end_seconds - a.start_seconds for a in assignments}
        busy: Dict[int, float] = {index: 0.0 for index in range(request.workers)}
        for assignment in assignments:
            busy[assignment.worker_index] += measured[assignment.task_id]
        cell_end_seconds: Dict[int, float] = {}
        for assignment in assignments:
            cell_index = dag.get(assignment.task_id).cell_index
            cell_end_seconds[cell_index] = max(
                cell_end_seconds.get(cell_index, 0.0), assignment.end_seconds
            )
        return PoolSchedule(
            n_workers=request.workers,
            slots_per_worker=cores,
            makespan_seconds=makespan,
            sequential_seconds=sum(measured.values()),
            critical_path_seconds=dag.critical_path_seconds(durations=measured),
            assignments=assignments,
            n_retries=0,
            failed_workers=(),
            busy_seconds_per_worker=busy,
            peak_concurrent_tasks=peak,
            available_slot_seconds=makespan * n_slots,
            policy=policy.name,
            deadline_seconds=request.deadline_seconds,
            cell_end_seconds=cell_end_seconds,
            backend=self.name,
        )

#: The execution backends selectable by name (CLI ``--backend``).
EXECUTION_BACKENDS = {
    backend.name: backend for backend in (SimulatedBackend, ThreadPoolBackend)
}


def execution_backend(
    backend: Union[str, ExecutionBackend, None]
) -> ExecutionBackend:
    """Resolve a backend instance from a name, an instance, or None."""
    if backend is None:
        return SimulatedBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return EXECUTION_BACKENDS[backend]()
    except KeyError:
        known = ", ".join(sorted(EXECUTION_BACKENDS))
        raise SchedulingError(
            f"unknown execution backend {backend!r} (known: {known})"
        ) from None


__all__ = [
    "TaskPayload",
    "ExecutionRequest",
    "ExecutionBackend",
    "SimulatedBackend",
    "ThreadPoolBackend",
    "EXECUTION_BACKENDS",
    "execution_backend",
]
