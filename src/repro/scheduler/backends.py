"""Pluggable execution backends for campaign DAGs.

The campaign scheduler separates *what* a campaign produces from *how* its
DAG is executed.  The scientific output — run documents and catalogue
records — always comes from the deterministic cell pass, executed in the
sequential path's exact order; that is the invariant that keeps every
backend bit-identical.  What a backend decides is the campaign's wall-clock
story: how the derived task DAG is dispatched over the worker pool and what
timeline (:class:`~repro.scheduler.pool.PoolSchedule`) comes back.

Four backends ship with the registry:

* :class:`SimulatedBackend` wraps the deterministic event-driven
  :class:`~repro.scheduler.pool.SimulatedWorkerPool` — simulated
  timestamps, injectable worker failures, reproducible timelines.
* :class:`ThreadPoolBackend` really executes the DAG's tasks concurrently
  on a :class:`concurrent.futures.ThreadPoolExecutor`: build tasks run a
  genuine :class:`~repro.buildsys.builder.BuildTask` re-compilation (a pure
  function of the package content digest, digest-checked against the
  recorded result), test and chain tasks run a read-only verification
  replay of the cell's recorded jobs — all on real OS threads, with
  dependencies gating submission, the selected scheduling policy ordering
  the ready queue, and measured wall-clock seconds folded into the
  returned ``PoolSchedule``.
* :class:`ProcessPoolBackend` shares the thread backend's dispatch loop but
  bridges every picklable :class:`~repro.buildsys.builder.BuildTask` to a
  :class:`concurrent.futures.ProcessPoolExecutor`, so re-compilations run
  in child processes outside the GIL.  The parent digest-checks each
  child's result against the recorded one, exactly as the thread backend
  does.  Verification payloads are closures over live system state — not
  picklable by design — and run inline on the dispatch threads.
* :class:`ShardedBackend` partitions the campaign's *cells* across N worker
  processes.  Each shard executes its cells' build tasks sequentially in a
  child process, persists its results as build-cache journal segments into
  a private storage directory, and the parent merges the shards on
  completion by replaying their journals into the parent cache
  (:meth:`~repro.scheduler.cache.BuildCache.merge_from`) — the append-only
  journal and content-addressed keys make the merge an idempotent replay,
  not new bookkeeping.  Verification payloads replay in the parent after
  the shards complete (they are causally downstream of the builds).

Backends are selected by name through :func:`execution_backend`, mirroring
:func:`~repro.scheduler.pool.scheduling_policy`.

All wall-clock backends share one failure contract: the first failing
payload aborts the campaign with a :class:`~repro._common.SchedulingError`
that names the failing task, and still-queued work is cancelled
(``cancel_futures=True``), so a 1000-cell campaign does not keep building
after the first failure.
"""

from __future__ import annotations

import heapq
import os
import shutil
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro._common import BuildError, SchedulingError
from repro.buildsys.builder import BuildResult, BuildTask, build_result_digest
from repro.scheduler.dag import CampaignDAG
from repro.scheduler.lifecycle import (
    EVENT_DEADLINE_EXCEEDED,
    EarlyStopRequested,
    PluginRegistry,
)
from repro.scheduler.pool import (
    PoolSchedule,
    SchedulingPolicy,
    SimulatedWorkerPool,
    TaskAssignment,
    WorkerFailure,
    effective_slots_per_worker,
    scheduling_policy,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.virtualization.resources import VALIDATION_VM_PROFILE, ResourceProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.scheduler.cache import BuildCache

#: Payload a backend may run for one task (real work; return value ignored).
TaskPayload = Callable[[], object]


@dataclass
class ExecutionRequest:
    """Everything a backend needs to execute one campaign DAG."""

    dag: CampaignDAG
    workers: int = 1
    worker_profile: ResourceProfile = VALIDATION_VM_PROFILE
    failures: Tuple[WorkerFailure, ...] = ()
    policy: Union[str, SchedulingPolicy, None] = None
    deadline_seconds: Optional[float] = None
    #: Task ID -> real work to perform when the task executes (backends that
    #: simulate time ignore the payloads; backends that really execute run
    #: them on their worker threads).
    payloads: Mapping[str, TaskPayload] = field(default_factory=dict)
    #: Shard count for the sharded backend (None lets the backend default to
    #: the worker count); ignored by every other backend.
    shards: Optional[int] = None
    #: Cache the sharded backend replays its shards' journals into on
    #: completion; None skips the merge.  Ignored by every other backend.
    merge_cache: Optional["BuildCache"] = None
    #: Lifecycle event bus the dispatch loop emits ``deadline_exceeded``
    #: through (None = no events).  When a deadline-abort policy is
    #: registered on it, the emission raises
    #: :class:`~repro.scheduler.lifecycle.EarlyStopRequested` and the
    #: backend cancels its queued work.
    lifecycle: Optional[PluginRegistry] = None
    #: Campaign ID the emitted events are tagged with.
    campaign_id: Optional[str] = None
    #: Telemetry bundle the dispatch loop records spans and metrics into
    #: (None = the no-op bundle).  Dispatch spans carry category
    #: "dispatch" — wall-clock timings, excluded from the cross-backend
    #: parity contract by design.
    telemetry: Optional[Telemetry] = None


class ExecutionBackend:
    """Executes a campaign DAG and reports the resulting pool timeline.

    Backends never see the validation runner: by the time a backend runs,
    every cell's runs are already recorded, which is what makes the
    scientific output backend-independent by construction.
    """

    #: Registry name, also used by the CLI ``--backend`` flag.
    name = "base"

    #: True when the backend really runs task payloads (the campaign
    #: scheduler skips preparing expensive payload state, e.g. expected
    #: build digests, for backends that only simulate time).
    executes_payloads = False

    def execute(self, request: ExecutionRequest) -> PoolSchedule:
        """Execute *request* and return the timeline it produced."""
        raise NotImplementedError


class SimulatedBackend(ExecutionBackend):
    """The deterministic event-driven pool simulation (today's default)."""

    name = "simulated"

    def execute(self, request: ExecutionRequest) -> PoolSchedule:
        telemetry = request.telemetry or NULL_TELEMETRY
        pool = SimulatedWorkerPool(
            request.workers,
            profile=request.worker_profile,
            failures=request.failures,
            policy=request.policy,
            deadline_seconds=request.deadline_seconds,
            lifecycle=request.lifecycle,
            campaign_id=request.campaign_id,
        )
        with telemetry.tracer.span(
            "backend_dispatch", category="dispatch", backend=self.name
        ):
            schedule = pool.execute(request.dag)
        schedule.backend = self.name
        telemetry.metrics.increment(
            "tasks_executed_total", amount=len(schedule.assignments), backend=self.name
        )
        return schedule


def _check_real_request(backend: "ExecutionBackend", request: ExecutionRequest) -> None:
    """Shared validation of a request against a wall-clock backend."""
    if request.failures:
        raise SchedulingError(
            "worker failure injection requires the simulated backend; "
            f"the {backend.name} backend executes for real"
        )
    if request.workers < 1:
        raise SchedulingError("a worker pool needs at least one worker")
    if request.deadline_seconds is not None and request.deadline_seconds <= 0:
        raise SchedulingError("a campaign deadline must be positive")


def _emit_deadline(
    backend: "ExecutionBackend", request: ExecutionRequest, elapsed_seconds: float
) -> None:
    """Emit ``deadline_exceeded`` for a dispatch loop that crossed its deadline.

    Raises :class:`~repro.scheduler.lifecycle.EarlyStopRequested` when a
    deadline-abort policy is registered on the request's lifecycle bus;
    the calling loop cancels its queued work and converts the request into
    the established :class:`~repro._common.SchedulingError` contract.
    """
    if request.lifecycle is None:
        return
    request.lifecycle.emit(
        EVENT_DEADLINE_EXCEEDED,
        campaign_id=request.campaign_id,
        payload={
            "backend": backend.name,
            "deadline_seconds": request.deadline_seconds,
            "elapsed_seconds": round(elapsed_seconds, 6),
        },
    )


def _dispatch_wall_clock(
    backend: "ExecutionBackend", request: ExecutionRequest
) -> PoolSchedule:
    """The shared wall-clock dispatch loop of the thread/process backends.

    Dependencies gate submission, the scheduling policy orders the ready
    queue exactly as in the simulation, and one dispatch thread per slot
    carries a task's payload — directly (thread backend) or bridged to a
    process pool (process backend) via ``backend._run_payload``.  The first
    payload failure raises a :class:`~repro._common.SchedulingError` naming
    the failing task, after cancelling the still-queued futures.
    """
    _check_real_request(backend, request)
    telemetry = request.telemetry or NULL_TELEMETRY
    policy = scheduling_policy(request.policy)
    dag = request.dag
    tasks = dag.tasks()
    # Same slot arithmetic as the simulated pool: a worker runs as many
    # concurrent tasks as its profile accommodates — normally one per
    # core, fewer when memory or disk is the binding constraint.
    slots_per_worker = effective_slots_per_worker(request.worker_profile)
    if slots_per_worker < 1:
        raise SchedulingError(
            "the worker profile cannot accommodate a single campaign task"
        )
    n_slots = request.workers * slots_per_worker
    with telemetry.tracer.span(
        "policy_ordering", category="dispatch", policy=policy.name, backend=backend.name
    ):
        policy.prepare(dag)
    order_index = {task.task_id: index for index, task in enumerate(tasks)}
    dependents = dag.dependents()
    remaining_deps = {task.task_id: set(task.dependencies) for task in tasks}

    def ready_entry(task_id: str) -> Tuple[Tuple, int, str]:
        return (policy.priority(dag.get(task_id)), order_index[task_id], task_id)

    ready: List[Tuple[Tuple, int, str]] = [
        ready_entry(task.task_id) for task in tasks if not task.dependencies
    ]
    heapq.heapify(ready)
    free_slots = list(range(n_slots))
    heapq.heapify(free_slots)
    started_at = time.monotonic()

    def run_task(task_id: str, slot: int) -> Tuple[str, int, float, float]:
        start = time.monotonic() - started_at
        # Runs on a dispatch thread; the tracer keeps per-thread span
        # stacks, so concurrent task spans never nest into each other.
        with telemetry.tracer.span(
            "task_execute", category="dispatch", task=task_id, backend=backend.name
        ):
            backend._run_payload(
                task_id, request.payloads.get(task_id), telemetry=telemetry
            )
        return task_id, slot, start, time.monotonic() - started_at

    assignments: List[TaskAssignment] = []
    completed = 0
    peak = 0
    pending = set()
    future_tasks: Dict[Future, str] = {}
    deadline_notified = False
    with ThreadPoolExecutor(
        max_workers=max(n_slots, 1), thread_name_prefix="sp-campaign"
    ) as executor:
        while completed < len(tasks):
            while ready and free_slots:
                task_id = heapq.heappop(ready)[2]
                slot = heapq.heappop(free_slots)
                future = executor.submit(run_task, task_id, slot)
                future_tasks[future] = task_id
                pending.add(future)
            peak = max(peak, len(pending))
            if not pending:
                raise SchedulingError(
                    "scheduler stalled with "
                    f"{len(tasks) - completed} unfinished task(s)"
                )
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    task_id, slot, start, end = future.result()
                except Exception as error:
                    failed_task = future_tasks.get(future, "<unknown task>")
                    # Stop submitting: a 1000-cell campaign must not keep
                    # building after the first failure.  Already-running
                    # tasks finish (they cannot be interrupted), queued
                    # ones are cancelled.
                    executor.shutdown(wait=False, cancel_futures=True)
                    raise SchedulingError(
                        f"campaign task {failed_task!r} failed on the "
                        f"{backend.name} backend: "
                        f"{type(error).__name__}: {error} "
                        "(still-queued tasks were cancelled)"
                    ) from error
                heapq.heappush(free_slots, slot)
                del future_tasks[future]
                assignments.append(
                    TaskAssignment(
                        task_id=task_id,
                        worker_index=slot // slots_per_worker,
                        start_seconds=start,
                        end_seconds=end,
                        attempt=1,
                    )
                )
                completed += 1
                for dependent in dependents[task_id]:
                    remaining = remaining_deps[dependent]
                    remaining.discard(task_id)
                    if not remaining:
                        heapq.heappush(ready, ready_entry(dependent))
            # One deadline notification per dispatch, checked between
            # completion batches (tasks cannot be interrupted mid-run).
            if (
                request.deadline_seconds is not None
                and not deadline_notified
                and time.monotonic() - started_at > request.deadline_seconds
            ):
                deadline_notified = True
                try:
                    _emit_deadline(
                        backend, request, time.monotonic() - started_at
                    )
                except EarlyStopRequested as stop:
                    executor.shutdown(wait=False, cancel_futures=True)
                    raise SchedulingError(
                        f"campaign aborted on the {backend.name} backend: "
                        f"{stop} ({len(tasks) - completed} unfinished "
                        "task(s) cancelled)"
                    ) from stop
    makespan = time.monotonic() - started_at if tasks else 0.0
    telemetry.metrics.increment(
        "tasks_executed_total", amount=len(tasks), backend=backend.name
    )
    telemetry.metrics.observe(
        "dispatch_makespan_seconds", makespan, backend=backend.name
    )
    # Stable report order: the wall clock decides completion order, the
    # DAG order breaks ties so repeated prints stay readable.
    assignments.sort(key=lambda a: (a.end_seconds, order_index[a.task_id]))
    measured = {a.task_id: a.end_seconds - a.start_seconds for a in assignments}
    busy: Dict[int, float] = {index: 0.0 for index in range(request.workers)}
    for assignment in assignments:
        busy[assignment.worker_index] += measured[assignment.task_id]
    cell_end_seconds: Dict[int, float] = {}
    for assignment in assignments:
        cell_index = dag.get(assignment.task_id).cell_index
        cell_end_seconds[cell_index] = max(
            cell_end_seconds.get(cell_index, 0.0), assignment.end_seconds
        )
    return PoolSchedule(
        n_workers=request.workers,
        slots_per_worker=slots_per_worker,
        makespan_seconds=makespan,
        sequential_seconds=sum(measured.values()),
        critical_path_seconds=dag.critical_path_seconds(durations=measured),
        assignments=assignments,
        n_retries=0,
        failed_workers=(),
        busy_seconds_per_worker=busy,
        peak_concurrent_tasks=peak,
        available_slot_seconds=makespan * n_slots,
        policy=policy.name,
        deadline_seconds=request.deadline_seconds,
        cell_end_seconds=cell_end_seconds,
        backend=backend.name,
    )


class ThreadPoolBackend(ExecutionBackend):
    """Really executes the campaign DAG on a wall-clock thread pool.

    Concurrency capacity is ``workers x slots_per_worker`` OS threads (the
    same slot arithmetic as the simulated pool); a task is submitted the
    moment its dependencies have finished and a slot is free, with the
    scheduling policy ordering the ready queue exactly as in the
    simulation.  Task payloads are the real work: build tasks re-execute
    their package compilation through a
    :class:`~repro.buildsys.builder.BuildTask` (pure functions of the
    content digest — concurrency cannot change their outcome, which the
    task's digest check enforces), while test and chain tasks replay their
    recorded jobs read-only over genuinely shared (immutable) campaign
    data.

    The returned schedule carries *measured* seconds: per-task start/end
    offsets from the campaign's start, the real makespan, and a critical
    path recomputed from the measured durations.  Those numbers differ
    from run to run — which is precisely why the determinism suite
    excludes timing fields when comparing backends.

    Worker failure injection is a feature of the simulation; requesting it
    here raises :class:`~repro._common.SchedulingError`.
    """

    name = "threads"

    executes_payloads = True

    def execute(self, request: ExecutionRequest) -> PoolSchedule:
        return _dispatch_wall_clock(self, request)

    def _run_payload(
        self,
        task_id: str,
        payload: Optional[TaskPayload],
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if payload is not None:
            payload()


def _execute_build_task(task: BuildTask) -> BuildResult:
    """Child-process entry point of the process backend (module level so a
    spawned interpreter can import it; the task travels by pickle)."""
    return task.run()


class ProcessPoolBackend(ExecutionBackend):
    """Executes build payloads in child processes, outside the GIL.

    The dispatch loop is the thread backend's: one dispatch thread per
    worker slot, dependencies gating submission, the policy ordering the
    ready queue.  What differs is where a payload runs — every
    :class:`~repro.buildsys.builder.BuildTask` (picklable by design: plain
    dataclasses over plain value types) is submitted to a shared
    :class:`concurrent.futures.ProcessPoolExecutor` and its result is
    pickled back, digest-checked by the parent against the recorded result
    exactly as the thread backend checks its in-process builds.  The
    child's ``runs`` counter increments on the child's *copy*; the parent
    increments its own task on result receipt, so the parity suite's
    ``runs == 1`` contract holds identically across backends.

    Verification payloads are closures over the live system storage — not
    picklable, by design — and run inline on the dispatch threads, exactly
    as on the thread backend.
    """

    name = "processes"

    executes_payloads = True

    def __init__(self) -> None:
        self._processes: Optional[ProcessPoolExecutor] = None

    def execute(self, request: ExecutionRequest) -> PoolSchedule:
        _check_real_request(self, request)
        n_slots = request.workers * max(
            effective_slots_per_worker(request.worker_profile), 1
        )
        self._processes = ProcessPoolExecutor(max_workers=n_slots)
        try:
            return _dispatch_wall_clock(self, request)
        finally:
            processes, self._processes = self._processes, None
            processes.shutdown(wait=True, cancel_futures=True)

    def _run_payload(
        self,
        task_id: str,
        payload: Optional[TaskPayload],
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if isinstance(payload, BuildTask):
            result = self._processes.submit(_execute_build_task, payload).result()
            # The child already enforced the task's own digest check; the
            # parent re-derives the digest from the unpickled result so the
            # cross-process round trip is covered too.
            if payload.expected_digest is not None:
                with telemetry.tracer.span(
                    "digest_check", category="dispatch", task=task_id
                ):
                    digest = build_result_digest(result)
                if digest != payload.expected_digest:
                    raise BuildError(
                        f"child-process build of {payload.package.key} on "
                        f"{payload.configuration.key} diverged from the "
                        f"recorded result ({digest} != "
                        f"{payload.expected_digest})"
                    )
            payload.runs += 1
        elif payload is not None:
            payload()


def _execute_shard(
    shard_index: int,
    build_tasks: List[Tuple[str, BuildTask]],
    directory: str,
) -> Dict[str, object]:
    """Child-process entry point of the sharded backend.

    Runs the shard's build tasks sequentially (the list arrives in DAG
    order, so intra-cell dependencies are respected), stores every result
    in a private :class:`~repro.scheduler.cache.BuildCache`, and persists
    that cache's journal segments into the shard's private storage
    directory.  Returns per-task timings and result digests for the
    parent's schedule and digest bookkeeping.
    """
    from repro.scheduler.cache import BuildCache
    from repro.storage.artifacts import ArtifactStore
    from repro.storage.common_storage import CommonStorage

    storage = CommonStorage(namespaces=())
    cache = BuildCache(ArtifactStore())
    started_at = time.monotonic()
    builds: List[Tuple[str, float, float, str]] = []
    for task_id, task in build_tasks:
        begin = time.monotonic() - started_at
        try:
            result = task.run()
        except Exception as error:
            raise SchedulingError(
                f"campaign task {task_id!r} failed on shard {shard_index}: "
                f"{type(error).__name__}: {error}"
            ) from None
        cache.store(task.package, task.configuration, result)
        builds.append(
            (
                task_id,
                begin,
                time.monotonic() - started_at,
                build_result_digest(result),
            )
        )
    cache.persist_to(storage)
    storage.persist(directory)
    return {"builds": builds}


class ShardedBackend(ExecutionBackend):
    """Partitions a campaign's cells across N worker processes.

    Cells are round-robined over the shards in cell order (cells are
    independent: campaign DAG dependencies never cross a cell), and each
    shard's build tasks run sequentially in one child process — the
    coarse-grained sibling of :class:`ProcessPoolBackend`'s per-task
    dispatch, with per-shard IPC instead of per-task IPC.  Each child
    persists its results as build-cache journal segments into a private
    storage directory; on completion the parent loads every shard's
    journal and replays it into the campaign's cache
    (:meth:`~repro.scheduler.cache.BuildCache.merge_from`) — an idempotent
    merge by content-addressed key, so re-merging work the parent cell
    pass already stored changes nothing (which is what keeps the cache
    statistics bit-identical to the simulated backend).

    Verification payloads (unpicklable closures over live state) replay in
    the parent *after* the shards complete — causally correct, since test
    and chain tasks depend on the builds.  The scheduling policy does not
    reorder across shards (the partition is by cell); its name is recorded
    on the schedule for the report.

    The returned schedule has one worker per shard (``slots_per_worker``
    is 1) and carries the shard count in ``PoolSchedule.shards``.
    """

    name = "sharded"

    executes_payloads = True

    def __init__(self, shards: Optional[int] = None) -> None:
        self.shards = shards

    def execute(self, request: ExecutionRequest) -> PoolSchedule:
        _check_real_request(self, request)
        telemetry = request.telemetry or NULL_TELEMETRY
        n_shards = self.shards if self.shards is not None else request.shards
        if n_shards is None:
            n_shards = request.workers
        if n_shards < 1:
            raise SchedulingError("a sharded campaign needs at least one shard")
        dag = request.dag
        tasks = dag.tasks()
        order_index = {task.task_id: index for index, task in enumerate(tasks)}
        cell_indices = sorted({task.cell_index for task in tasks})
        shard_of_cell = {
            cell: position % n_shards for position, cell in enumerate(cell_indices)
        }
        shard_builds: Dict[int, List[Tuple[str, BuildTask]]] = {
            index: [] for index in range(n_shards)
        }
        for task in tasks:
            payload = request.payloads.get(task.task_id)
            if isinstance(payload, BuildTask):
                shard_builds[shard_of_cell[task.cell_index]].append(
                    (task.task_id, payload)
                )
        started_at = time.monotonic()
        assignments: List[TaskAssignment] = []
        deadline_notified = False

        def check_deadline() -> None:
            # Checked at every coarse-grained decision point (before each
            # shard submission, after each shard result, before each
            # verification replay): shards are all-or-nothing, so these are
            # the only moments an abort policy can act.
            nonlocal deadline_notified
            if request.deadline_seconds is None or deadline_notified:
                return
            elapsed = time.monotonic() - started_at
            if elapsed <= request.deadline_seconds:
                return
            deadline_notified = True
            _emit_deadline(self, request, elapsed)

        root = tempfile.mkdtemp(prefix="sp-shards-")
        try:
            directories = {
                index: os.path.join(root, f"shard_{index:02d}")
                for index in range(n_shards)
            }
            # Only shards with build work get a child process; an all-cached
            # (or build-free) shard has nothing to execute or journal.
            working = [index for index in range(n_shards) if shard_builds[index]]
            reports: Dict[int, Dict[str, object]] = {}
            if working:
                with ProcessPoolExecutor(max_workers=len(working)) as processes:
                    try:
                        futures = {}
                        for index in working:
                            check_deadline()
                            futures[index] = processes.submit(
                                _execute_shard,
                                index,
                                shard_builds[index],
                                directories[index],
                            )
                        for index, future in futures.items():
                            reports[index] = future.result()
                            check_deadline()
                    except EarlyStopRequested:
                        processes.shutdown(wait=False, cancel_futures=True)
                        raise
                    except Exception as error:
                        processes.shutdown(wait=False, cancel_futures=True)
                        raise SchedulingError(
                            f"{type(error).__name__}: {error} on the "
                            f"{self.name} backend "
                            "(still-queued shards were cancelled)"
                        ) from error
            for index in working:
                for task_id, begin, end, digest in reports[index]["builds"]:
                    payload = request.payloads[task_id]
                    if (
                        payload.expected_digest is not None
                        and digest != payload.expected_digest
                    ):
                        raise SchedulingError(
                            f"campaign task {task_id!r} failed on the "
                            f"{self.name} backend: shard {index} returned "
                            f"digest {digest} instead of the recorded "
                            f"{payload.expected_digest}"
                        )
                    # The child ran its pickled copy; mirror the execution
                    # count on the parent's task, as the process backend does.
                    payload.runs += 1
                    assignments.append(
                        TaskAssignment(
                            task_id=task_id,
                            worker_index=index,
                            start_seconds=begin,
                            end_seconds=end,
                            attempt=1,
                        )
                    )
            # Verification replays run after the shards: tests and chain
            # steps are causally downstream of their cell's builds.
            for task in tasks:
                payload = request.payloads.get(task.task_id)
                if isinstance(payload, BuildTask):
                    continue
                check_deadline()
                begin = time.monotonic() - started_at
                try:
                    if payload is not None:
                        payload()
                except Exception as error:
                    raise SchedulingError(
                        f"campaign task {task.task_id!r} failed on the "
                        f"{self.name} backend: {type(error).__name__}: {error}"
                    ) from error
                assignments.append(
                    TaskAssignment(
                        task_id=task.task_id,
                        worker_index=shard_of_cell[task.cell_index],
                        start_seconds=begin,
                        end_seconds=time.monotonic() - started_at,
                        attempt=1,
                    )
                )
            # Merge: replay every shard's persisted journal into the parent
            # cache.  The journal segments on disk are the shard's real
            # output; loading them back exercises the same path a separate
            # merge process would use.  A parent cache synced to a mounted
            # journal appends the merged entries straight into it (a daemon
            # restart between merge and the next persist loses nothing);
            # an unsynced cache defers to the next persist as before.
            if request.merge_cache is not None:
                from repro.scheduler.cache import BuildCache
                from repro.storage.artifacts import ArtifactStore
                from repro.storage.common_storage import CommonStorage

                for index in working:
                    if not os.path.isdir(directories[index]):
                        continue
                    # The merge is journal replay, not cell science: the
                    # span lands in the "journal" category, outside the
                    # cell-pass parity sequence (sharded-only spans would
                    # otherwise break cross-backend comparison).
                    with telemetry.tracer.span(
                        "shard_merge", category="journal", shard=index
                    ):
                        shard_storage = CommonStorage.load(
                            directories[index], namespaces=[BuildCache.NAMESPACE]
                        )
                        shard_cache = BuildCache.restore_from(
                            shard_storage, ArtifactStore()
                        )
                        request.merge_cache.merge_from(shard_cache)
                    telemetry.metrics.increment("shard_merges_total")
        except EarlyStopRequested as stop:
            unfinished = len(working) - len(reports)
            raise SchedulingError(
                f"campaign aborted on the {self.name} backend: {stop} "
                f"({unfinished} shard(s) cancelled, remaining verification "
                "replays skipped)"
            ) from stop
        finally:
            shutil.rmtree(root, ignore_errors=True)
        makespan = time.monotonic() - started_at if tasks else 0.0
        telemetry.metrics.increment(
            "tasks_executed_total", amount=len(tasks), backend=self.name
        )
        telemetry.metrics.observe(
            "dispatch_makespan_seconds", makespan, backend=self.name
        )
        assignments.sort(key=lambda a: (a.end_seconds, order_index[a.task_id]))
        measured = {a.task_id: a.end_seconds - a.start_seconds for a in assignments}
        busy: Dict[int, float] = {index: 0.0 for index in range(n_shards)}
        for assignment in assignments:
            busy[assignment.worker_index] += measured[assignment.task_id]
        cell_end_seconds: Dict[int, float] = {}
        for assignment in assignments:
            cell_index = dag.get(assignment.task_id).cell_index
            cell_end_seconds[cell_index] = max(
                cell_end_seconds.get(cell_index, 0.0), assignment.end_seconds
            )
        return PoolSchedule(
            n_workers=n_shards,
            slots_per_worker=1,
            makespan_seconds=makespan,
            sequential_seconds=sum(measured.values()),
            critical_path_seconds=dag.critical_path_seconds(durations=measured),
            assignments=assignments,
            n_retries=0,
            failed_workers=(),
            busy_seconds_per_worker=busy,
            peak_concurrent_tasks=max(len(working), 1 if tasks else 0),
            available_slot_seconds=makespan * n_shards,
            policy=scheduling_policy(request.policy).name,
            deadline_seconds=request.deadline_seconds,
            cell_end_seconds=cell_end_seconds,
            backend=self.name,
            shards=n_shards,
        )


#: The execution backends selectable by name (CLI ``--backend``).
EXECUTION_BACKENDS = {
    backend.name: backend
    for backend in (
        SimulatedBackend,
        ThreadPoolBackend,
        ProcessPoolBackend,
        ShardedBackend,
    )
}


def execution_backend(
    backend: Union[str, ExecutionBackend, None]
) -> ExecutionBackend:
    """Resolve a backend instance from a name, an instance, or None."""
    if backend is None:
        return SimulatedBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return EXECUTION_BACKENDS[backend]()
    except KeyError:
        known = ", ".join(sorted(EXECUTION_BACKENDS))
        raise SchedulingError(
            f"unknown execution backend {backend!r} (known: {known})"
        ) from None


__all__ = [
    "TaskPayload",
    "ExecutionRequest",
    "ExecutionBackend",
    "SimulatedBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "EXECUTION_BACKENDS",
    "execution_backend",
]
