"""Campaign scheduling: parallel validation campaigns over a worker pool.

The sp-system validates "as a regular, automated operation" every preserved
experiment on every preserved environment.  This package turns that matrix of
(experiment, configuration) cells into a job DAG, executes it over a
configurable simulated worker pool, and layers a content-hash keyed build
cache over the package builder so identical builds are compiled once and
reused — while guaranteeing bit-identical :class:`~repro.core.jobs.ValidationRun`
output versus the plain sequential path.
"""

from repro.scheduler.backends import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    ExecutionRequest,
    SimulatedBackend,
    ThreadPoolBackend,
    execution_backend,
)
from repro.scheduler.cache import (
    BuildCache,
    CacheStatistics,
    CachingPackageBuilder,
    build_cache_key,
    package_identity_digest,
)
from repro.scheduler.campaign import CampaignCell, CampaignResult, CampaignScheduler
from repro.scheduler.dag import CampaignDAG, CampaignTask, TaskKind
from repro.scheduler.spec import DEFAULT_BATCH_SIZE, CampaignSpec, ValidationRequest
from repro.scheduler.pool import (
    SCHEDULING_POLICIES,
    CriticalPathPolicy,
    FifoPolicy,
    LongestTaskFirstPolicy,
    PoolSchedule,
    SchedulingPolicy,
    SimulatedWorkerPool,
    TaskAssignment,
    WorkerFailure,
    scheduling_policy,
)

__all__ = [
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "ExecutionRequest",
    "SimulatedBackend",
    "ThreadPoolBackend",
    "execution_backend",
    "DEFAULT_BATCH_SIZE",
    "CampaignSpec",
    "ValidationRequest",
    "BuildCache",
    "CacheStatistics",
    "CachingPackageBuilder",
    "build_cache_key",
    "package_identity_digest",
    "CampaignCell",
    "CampaignResult",
    "CampaignScheduler",
    "CampaignDAG",
    "CampaignTask",
    "TaskKind",
    "PoolSchedule",
    "SchedulingPolicy",
    "FifoPolicy",
    "LongestTaskFirstPolicy",
    "CriticalPathPolicy",
    "SCHEDULING_POLICIES",
    "scheduling_policy",
    "SimulatedWorkerPool",
    "TaskAssignment",
    "WorkerFailure",
]
