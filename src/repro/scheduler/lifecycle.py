"""Campaign lifecycle event bus: observers, early-stop policies, sinks.

The scheduler, history ledger, reporting and intervention tracking used to
be hard-wired to each other; this module decouples them behind a typed
event stream.  The dispatch loops emit :class:`LifecycleEvent`s — one of
the names in :data:`LIFECYCLE_EVENTS` — through a :class:`PluginRegistry`,
and everything that *reacts* to a campaign (history ingestion, regression
alerting, JSONL event logs, deadline aborts) plugs into the registry
instead of into the scheduler's code.

The observer-vs-policy contract
-------------------------------

Two kinds of plugins exist, with sharply different powers:

* **Observers** (:class:`LifecycleObserver`) are read-only sinks.  They
  are notified of every event whose name is in their ``events`` set, in
  registration order, and must never change the science: run documents,
  catalogue records and cache statistics stay byte-identical whether zero
  or twenty observers are attached (pinned by the backend-parity suite).
  An observer may *emit follow-up events* through ``context.registry``
  (the regression alerter turns one ``campaign_finished`` into N
  ``regression_detected`` events) and may write to storage namespaces it
  owns (the intervention store) or to external files (the JSONL sink) —
  but never to the catalogue, the build cache or the history journal
  except through the owning API.

* **Early-stop policies** (:class:`EarlyStopPolicy`) may cancel queued
  work.  After the observers have seen an event, every registered policy
  is asked :meth:`~EarlyStopPolicy.should_stop`; the first non-``None``
  reason raises :class:`EarlyStopRequested` out of ``emit``.  The dispatch
  loop that emitted the event catches it, cancels its queued futures via
  the existing ``executor.shutdown(wait=False, cancel_futures=True)``
  machinery, and re-raises a :class:`~repro._common.SchedulingError`.
  Policies therefore abort *pending* work only — cells whose run documents
  are already recorded keep them bit-identical (the deterministic cell
  pass runs before dispatch, so an abort never loses science).

Event ordering is pinned: within one campaign the per-cell
``cell_completed`` sequence is identical on every backend (it is emitted
from the deterministic cell pass, not from the wall-clock dispatch), and
``campaign_finished`` always comes last.  ``deadline_exceeded`` is the one
backend-relative event: it fires against the simulated timeline on the
simulated backend and against ``time.monotonic()`` on the executing ones,
exactly like the late-cell report it generalises.

This module is deliberately free of core/history imports — the registry
knows nothing about the system it observes.  System-coupled plugins live
in :mod:`repro.plugins`.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro._common import SchedulingError

#: The typed event stream.  Every name a registry will emit is here; an
#: ``emit`` with an unknown name is a programming error and raises.
EVENT_CELL_COMPLETED = "cell_completed"
EVENT_CAMPAIGN_FINISHED = "campaign_finished"
EVENT_REGRESSION_DETECTED = "regression_detected"
EVENT_DEADLINE_EXCEEDED = "deadline_exceeded"
EVENT_BUDGET_EXCEEDED = "budget_exceeded"
EVENT_EVOLUTION_RECORDED = "evolution_recorded"
# Service-daemon events (repro.service): the submission queue and its
# telemetry worker report through the same bus the campaigns use, so one
# JSONL sink or webhook observes a whole installation — campaigns and the
# daemon that dispatches them alike.
EVENT_SUBMISSION_QUEUED = "submission_queued"
EVENT_SUBMISSION_STARTED = "submission_started"
EVENT_SUBMISSION_CANCELLED = "submission_cancelled"
EVENT_TENANT_THROTTLED = "tenant_throttled"
EVENT_HEARTBEAT = "heartbeat"

LIFECYCLE_EVENTS: FrozenSet[str] = frozenset(
    {
        EVENT_CELL_COMPLETED,
        EVENT_CAMPAIGN_FINISHED,
        EVENT_REGRESSION_DETECTED,
        EVENT_DEADLINE_EXCEEDED,
        EVENT_BUDGET_EXCEEDED,
        EVENT_EVOLUTION_RECORDED,
        EVENT_SUBMISSION_QUEUED,
        EVENT_SUBMISSION_STARTED,
        EVENT_SUBMISSION_CANCELLED,
        EVENT_TENANT_THROTTLED,
        EVENT_HEARTBEAT,
    }
)


@dataclass(frozen=True)
class LifecycleEvent:
    """One campaign lifecycle event.

    ``payload`` carries JSON-safe scalars only — it is what the JSONL sink
    writes and the status pages render.  Live objects (the campaign handle,
    the completed cell) travel separately in the :class:`EventContext`
    handed to observers, and never serialise.
    """

    name: str
    sequence: int
    campaign_id: Optional[str] = None
    payload: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (the JSONL event-log line)."""
        return {
            "sequence": self.sequence,
            "event": self.name,
            "campaign_id": self.campaign_id,
            "payload": dict(self.payload),
        }


@dataclass(frozen=True)
class EventContext:
    """What an observer receives beside the event itself.

    ``subjects`` holds the live objects behind the event (e.g. ``cell``,
    ``handle``, ``campaign``, ``event`` for evolutions); ``registry`` lets
    an observer emit follow-up events.
    """

    registry: "PluginRegistry"
    subjects: Mapping[str, object] = field(default_factory=dict)


class LifecycleObserver:
    """Base class for read-only event sinks (see the module docstring).

    Subclasses set ``events`` to the names they want (the default — the
    full :data:`LIFECYCLE_EVENTS` set — subscribes to everything) and
    override :meth:`handle`.
    """

    #: Short name used in diagnostics and the plugin registry listing.
    name: str = "observer"
    #: Event names this observer is notified of.
    events: FrozenSet[str] = LIFECYCLE_EVENTS

    def handle(self, event: LifecycleEvent, context: EventContext) -> None:
        """React to one event.  Must not mutate campaign science."""
        raise NotImplementedError


class EarlyStopPolicy:
    """Base class for policies that may cancel queued campaign work."""

    name: str = "early-stop"

    def should_stop(
        self, event: LifecycleEvent, context: EventContext
    ) -> Optional[str]:
        """Return a human-readable reason to stop, or ``None`` to continue."""
        raise NotImplementedError


class EarlyStopRequested(SchedulingError):
    """Raised out of ``emit`` when an early-stop policy fires.

    A :class:`~repro._common.SchedulingError` subclass so that dispatch
    loops which do not special-case it still fail with the established
    contract (queued futures cancelled, campaign submission fails while
    completed run documents stay recorded in the catalogue).
    """

    def __init__(self, reason: str, event: LifecycleEvent, policy: EarlyStopPolicy) -> None:
        super().__init__(reason)
        self.reason = reason
        self.event = event
        self.policy = policy


class PluginRegistry:
    """Ordered registry of observers and early-stop policies.

    Observers are notified in registration order; system-level plugins
    (the history recorder) register first, per-submission plugins added
    via :meth:`scoped` run after them — so e.g. the regression alerter
    always sees the campaign *after* it has been ingested into the ledger.
    Every emitted event is also recorded on :attr:`events` for reporting.
    """

    def __init__(self) -> None:
        self._observers: List[LifecycleObserver] = []
        self._policies: List[EarlyStopPolicy] = []
        self._sequence = 0
        #: Every event ever emitted through this registry, in order.
        self.events: List[LifecycleEvent] = []

    # -- membership -----------------------------------------------------------
    def add_observer(self, observer: LifecycleObserver) -> LifecycleObserver:
        """Append an observer (notified after all earlier ones)."""
        self._observers.append(observer)
        return observer

    def add_policy(self, policy: EarlyStopPolicy) -> EarlyStopPolicy:
        """Append an early-stop policy."""
        self._policies.append(policy)
        return policy

    def observers(self) -> Tuple[LifecycleObserver, ...]:
        return tuple(self._observers)

    def policies(self) -> Tuple[EarlyStopPolicy, ...]:
        return tuple(self._policies)

    @contextmanager
    def scoped(
        self,
        observers: Sequence[LifecycleObserver] = (),
        policies: Sequence[EarlyStopPolicy] = (),
    ) -> Iterator["PluginRegistry"]:
        """Temporarily extend the registry for one campaign submission.

        The added plugins run *after* the permanently registered ones and
        are removed on exit, also when the submission fails.
        """
        added_observers = list(observers)
        added_policies = list(policies)
        self._observers.extend(added_observers)
        self._policies.extend(added_policies)
        try:
            yield self
        finally:
            for observer in added_observers:
                self._observers.remove(observer)
            for policy in added_policies:
                self._policies.remove(policy)

    # -- emission -------------------------------------------------------------
    def emit(
        self,
        name: str,
        campaign_id: Optional[str] = None,
        payload: Optional[Mapping[str, object]] = None,
        subjects: Optional[Mapping[str, object]] = None,
    ) -> LifecycleEvent:
        """Emit one event: record it, notify observers, consult policies.

        Raises :class:`EarlyStopRequested` when a policy returns a stop
        reason — the emitting dispatch loop is responsible for cancelling
        its queued work and converting the request into the established
        ``SchedulingError`` failure contract.
        """
        if name not in LIFECYCLE_EVENTS:
            raise SchedulingError(
                f"unknown lifecycle event {name!r} "
                f"(known: {', '.join(sorted(LIFECYCLE_EVENTS))})"
            )
        self._sequence += 1
        event = LifecycleEvent(
            name=name,
            sequence=self._sequence,
            campaign_id=campaign_id,
            payload=dict(payload or {}),
        )
        self.events.append(event)
        context = EventContext(registry=self, subjects=dict(subjects or {}))
        for observer in list(self._observers):
            if event.name in observer.events:
                observer.handle(event, context)
        for policy in list(self._policies):
            reason = policy.should_stop(event, context)
            if reason is not None:
                raise EarlyStopRequested(reason, event, policy)
        return event

    def recent(self, limit: Optional[int] = None) -> List[LifecycleEvent]:
        """The most recent events (all of them when *limit* is ``None``)."""
        if limit is None:
            return list(self.events)
        return self.events[-limit:]


class DeadlineAbortPolicy(EarlyStopPolicy):
    """Turn ``deadline_seconds`` from a report into an enforceable abort.

    When a backend's dispatch loop emits ``deadline_exceeded``, this policy
    requests the stop; the backend cancels its queued cells and the
    campaign submission fails with a :class:`~repro._common.SchedulingError`
    naming the deadline.  Completed cells keep their (already recorded)
    bit-identical run documents.
    """

    name = "deadline-abort"

    def should_stop(
        self, event: LifecycleEvent, context: EventContext
    ) -> Optional[str]:
        if event.name != EVENT_DEADLINE_EXCEEDED:
            return None
        deadline = event.payload.get("deadline_seconds")
        elapsed = event.payload.get("elapsed_seconds")
        return (
            f"deadline of {deadline}s exceeded after {elapsed}s "
            f"on the {event.payload.get('backend', '?')} backend"
        )


class FileEventSink(LifecycleObserver):
    """Observer appending every event as one JSON line to a log file.

    The log is an external monitoring artefact, not campaign science: it
    lives outside the common storage (any filesystem path) and appends
    across submissions, so an operator can ``tail -f`` a whole service's
    lifetime.

    Every record is flushed *and* fsynced before the handler returns: the
    sink is the crash-window audit trail of a long-running daemon, and an
    OS-buffered line that dies with a killed process would silently lose
    the very events an operator needs to reconstruct the crash.  A reader
    should use :func:`read_event_log`, which tolerates the one partial
    line a mid-``write`` kill can still leave behind.
    """

    name = "event-log"

    def __init__(self, path: str) -> None:
        self.path = path

    def handle(self, event: LifecycleEvent, context: EventContext) -> None:
        try:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as error:
            raise SchedulingError(
                f"cannot append to the event log {self.path!r}: {error}"
            ) from error


def read_event_log(path: str) -> List[dict]:
    """Read a :class:`FileEventSink` log back as a list of event documents.

    Tolerates a truncated final line (the partial record a kill can leave
    mid-``write``); a corrupted record anywhere *before* the tail is a
    real error and raises :class:`~repro._common.SchedulingError`.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        return []
    except OSError as error:
        raise SchedulingError(
            f"cannot read the event log {path!r}: {error}"
        ) from error
    events: List[dict] = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn tail record from a crash mid-append
            raise SchedulingError(
                f"corrupted event log record at {path}:{index + 1}"
            ) from None
        if isinstance(document, dict):
            events.append(document)
    return events


class WebhookEventSink(LifecycleObserver):
    """Observer POSTing each event's JSON document to a webhook URL.

    The transport is injectable (``transport(url, body_bytes)``) so tests
    and offline deployments never open sockets; the default uses urllib.
    """

    name = "webhook"

    def __init__(
        self,
        url: str,
        transport: Optional[Callable[[str, bytes], None]] = None,
    ) -> None:
        self.url = url
        self.transport = transport if transport is not None else self._post

    @staticmethod
    def _post(url: str, body: bytes) -> None:  # pragma: no cover - network
        import urllib.request

        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"}
        )
        urllib.request.urlopen(request, timeout=10).read()

    def handle(self, event: LifecycleEvent, context: EventContext) -> None:
        body = json.dumps(event.to_dict(), sort_keys=True).encode("utf-8")
        try:
            self.transport(self.url, body)
        except Exception as error:
            raise SchedulingError(
                f"webhook delivery to {self.url!r} failed: {error}"
            ) from error


__all__ = [
    "EVENT_CELL_COMPLETED",
    "EVENT_CAMPAIGN_FINISHED",
    "EVENT_REGRESSION_DETECTED",
    "EVENT_DEADLINE_EXCEEDED",
    "EVENT_BUDGET_EXCEEDED",
    "EVENT_EVOLUTION_RECORDED",
    "EVENT_SUBMISSION_QUEUED",
    "EVENT_SUBMISSION_STARTED",
    "EVENT_SUBMISSION_CANCELLED",
    "EVENT_TENANT_THROTTLED",
    "EVENT_HEARTBEAT",
    "LIFECYCLE_EVENTS",
    "LifecycleEvent",
    "EventContext",
    "LifecycleObserver",
    "EarlyStopPolicy",
    "EarlyStopRequested",
    "PluginRegistry",
    "DeadlineAbortPolicy",
    "FileEventSink",
    "WebhookEventSink",
    "read_event_log",
]
