"""Shared helpers used across the :mod:`repro` packages.

The sp-system reproduction is deterministic by construction: every simulated
outcome (a build, a test, a numeric perturbation induced by an environment
change) is derived from stable content hashes rather than Python's per-process
``hash`` or wall-clock randomness.  This module collects the small utilities
that make that possible, together with the exception hierarchy shared by all
subsystems.
"""

from __future__ import annotations

import hashlib
import itertools
import re
from typing import Iterable, Iterator, Sequence


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An environment or system configuration is invalid or unknown."""


class StorageError(ReproError):
    """The common sp-system storage rejected an operation."""


class BuildError(ReproError):
    """A software build could not be carried out (as opposed to failing)."""


class ValidationError(ReproError):
    """A validation job or comparison was mis-specified."""


class SchedulingError(ReproError):
    """A cron expression or scheduling request is invalid."""


_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


def ensure_identifier(value: str, what: str = "identifier") -> str:
    """Validate that *value* is a safe identifier and return it.

    Identifiers are used for package names, experiment names, storage
    namespaces and similar keys.  Restricting the character set keeps the
    storage layer and the generated web pages simple and predictable.
    """
    if not isinstance(value, str) or not value:
        raise ReproError(f"{what} must be a non-empty string, got {value!r}")
    if not _IDENTIFIER_RE.match(value):
        raise ReproError(
            f"{what} {value!r} contains characters outside [A-Za-z0-9_.-]"
        )
    return value


def stable_hash(*parts: object, digits: int = 16) -> int:
    """Return a deterministic integer hash of *parts*.

    The hash is stable across processes and Python versions, unlike the
    built-in ``hash``.  It is used to derive reproducible pseudo-random
    outcomes, e.g. which synthetic package fails under which compiler.
    """
    payload = "\x1f".join(str(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()
    return int(digest[:digits], 16)


def stable_fraction(*parts: object) -> float:
    """Return a deterministic pseudo-random float in ``[0, 1)`` from *parts*."""
    return stable_hash(*parts) / float(1 << 64)


def stable_digest(*parts: object) -> str:
    """Return a deterministic hex digest of *parts* (40 characters)."""
    payload = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:40]


def parse_version(version: str) -> tuple:
    """Parse a dotted version string into a tuple of integers.

    Non-numeric components are kept as strings so that versions such as
    ``"6.02/05"`` or ``"5.34.36"`` still order sensibly.
    """
    if not version:
        raise ReproError("version string must be non-empty")
    normalised = version.replace("/", ".")
    components: list = []
    for token in normalised.split("."):
        token = token.strip()
        if not token:
            continue
        if token.isdigit():
            components.append(int(token))
        else:
            components.append(token)
    if not components:
        raise ReproError(f"could not parse version string {version!r}")
    return tuple(components)


def version_at_least(version: str, minimum: str) -> bool:
    """Return True if *version* is greater than or equal to *minimum*."""
    return _comparable(parse_version(version)) >= _comparable(parse_version(minimum))


def version_less_than(version: str, maximum: str) -> bool:
    """Return True if *version* is strictly smaller than *maximum*."""
    return _comparable(parse_version(version)) < _comparable(parse_version(maximum))


def _comparable(parsed: tuple) -> tuple:
    """Make a parsed version comparable even when it mixes ints and strings."""
    return tuple(
        (0, component) if isinstance(component, int) else (1, str(component))
        for component in parsed
    )


def chunked(items: Sequence, size: int) -> Iterator[Sequence]:
    """Yield successive chunks of *items* with at most *size* elements."""
    if size <= 0:
        raise ReproError("chunk size must be positive")
    for start in range(0, len(items), size):
        yield items[start:start + size]


def unique_preserving_order(items: Iterable) -> list:
    """Return *items* with duplicates removed, keeping first occurrences."""
    seen = set()
    result = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result


_COUNTERS = itertools.count(1)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple aligned text table used by reports and benchmarks."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line.rstrip())
    lines.append("  ".join("-" * width for width in widths))
    for row in materialised:
        lines.append(
            "  ".join(
                cell.ljust(widths[index]) for index, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)
