"""Catalogue of operating system releases known to the sp-system.

The paper's validation framework hosts virtual machine images built from
different Scientific Linux releases (SL5 and SL6 at the time of writing, with
SL7 named as the next challenge).  This module models those releases: their
release and end-of-life years, the word sizes they support, the system
compiler they ship and an abstract *ABI level* which increases with every
release and is what ultimately breaks old binaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro._common import ConfigurationError, ensure_identifier


@dataclass(frozen=True)
class OperatingSystemRelease:
    """A single operating system release, e.g. Scientific Linux 6.

    Attributes
    ----------
    name:
        Short identifier used throughout the system, e.g. ``"SL6"``.
    family:
        Distribution family, e.g. ``"Scientific Linux"``.
    major_version:
        The major version number (5 for SL5).
    release_year:
        First year the release was generally available.
    end_of_life_year:
        Year in which security support ends.  After this year a frozen
        system based on the release is considered unsafe to operate.
    word_sizes:
        Word sizes (in bits) for which installation images exist.
    system_compiler:
        The default compiler version shipped with the release
        (``("gcc", "4.1")`` for SL5).
    abi_level:
        Monotonically increasing integer describing the kernel/libc ABI
        generation.  Binaries built against a higher ABI level do not run on
        a lower one; the converse usually works but is what the validation
        system has to verify.
    libc_version:
        The glibc version shipped with the release.
    """

    name: str
    family: str
    major_version: int
    release_year: int
    end_of_life_year: int
    word_sizes: Tuple[int, ...]
    system_compiler: Tuple[str, str]
    abi_level: int
    libc_version: str

    def __post_init__(self) -> None:
        ensure_identifier(self.name, "operating system name")
        if self.release_year >= self.end_of_life_year:
            raise ConfigurationError(
                f"{self.name}: end of life ({self.end_of_life_year}) must be "
                f"after release ({self.release_year})"
            )
        if not self.word_sizes:
            raise ConfigurationError(f"{self.name}: at least one word size required")
        for word_size in self.word_sizes:
            if word_size not in (32, 64):
                raise ConfigurationError(
                    f"{self.name}: unsupported word size {word_size}"
                )

    def supports_word_size(self, word_size: int) -> bool:
        """Return True if installation images exist for *word_size* bits."""
        return word_size in self.word_sizes

    def is_supported_in(self, year: int) -> bool:
        """Return True if the release still receives support in *year*."""
        return self.release_year <= year <= self.end_of_life_year

    def is_released_by(self, year: int) -> bool:
        """Return True if the release exists at all in *year*."""
        return year >= self.release_year

    @property
    def label(self) -> str:
        """Human readable label, e.g. ``"SL6 (Scientific Linux 6)"``."""
        return f"{self.name} ({self.family} {self.major_version})"


class OperatingSystemCatalog:
    """Registry of known operating system releases.

    The catalogue is ordered by ABI level so that "the most recent release"
    and "the successor of release X" are well defined, which the migration
    planner relies on.
    """

    def __init__(self, releases: Optional[Iterable[OperatingSystemRelease]] = None):
        self._releases: Dict[str, OperatingSystemRelease] = {}
        for release in releases if releases is not None else default_releases():
            self.register(release)

    def register(self, release: OperatingSystemRelease) -> None:
        """Add *release* to the catalogue, rejecting duplicate names."""
        if release.name in self._releases:
            raise ConfigurationError(f"duplicate OS release {release.name!r}")
        self._releases[release.name] = release

    def get(self, name: str) -> OperatingSystemRelease:
        """Return the release called *name* or raise ``ConfigurationError``."""
        try:
            return self._releases[name]
        except KeyError:
            known = ", ".join(sorted(self._releases))
            raise ConfigurationError(
                f"unknown operating system {name!r} (known: {known})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._releases

    def __len__(self) -> int:
        return len(self._releases)

    def all(self) -> List[OperatingSystemRelease]:
        """Return all releases ordered by increasing ABI level."""
        return sorted(self._releases.values(), key=lambda release: release.abi_level)

    def released_in(self, year: int) -> List[OperatingSystemRelease]:
        """Return the releases that exist in *year*, oldest first."""
        return [release for release in self.all() if release.is_released_by(year)]

    def supported_in(self, year: int) -> List[OperatingSystemRelease]:
        """Return the releases still supported in *year*, oldest first."""
        return [release for release in self.all() if release.is_supported_in(year)]

    def latest(self, year: Optional[int] = None) -> OperatingSystemRelease:
        """Return the most recent release, optionally as of *year*."""
        candidates = self.all() if year is None else self.released_in(year)
        if not candidates:
            raise ConfigurationError(f"no operating system released by {year}")
        return candidates[-1]

    def successor_of(self, name: str) -> Optional[OperatingSystemRelease]:
        """Return the next release after *name*, or None if it is the latest."""
        ordered = self.all()
        current = self.get(name)
        for release in ordered:
            if release.abi_level > current.abi_level:
                return release
        return None


def default_releases() -> List[OperatingSystemRelease]:
    """The Scientific Linux lineage referenced by the paper.

    SL4 is included because legacy experiment software was originally built
    there; SL7 is included because the paper names it as the next migration
    target.
    """
    return [
        OperatingSystemRelease(
            name="SL4",
            family="Scientific Linux",
            major_version=4,
            release_year=2005,
            end_of_life_year=2012,
            word_sizes=(32, 64),
            system_compiler=("gcc", "3.4"),
            abi_level=1,
            libc_version="2.3",
        ),
        OperatingSystemRelease(
            name="SL5",
            family="Scientific Linux",
            major_version=5,
            release_year=2007,
            end_of_life_year=2017,
            word_sizes=(32, 64),
            system_compiler=("gcc", "4.1"),
            abi_level=2,
            libc_version="2.5",
        ),
        OperatingSystemRelease(
            name="SL6",
            family="Scientific Linux",
            major_version=6,
            release_year=2011,
            end_of_life_year=2020,
            word_sizes=(64,),
            system_compiler=("gcc", "4.4"),
            abi_level=3,
            libc_version="2.12",
        ),
        OperatingSystemRelease(
            name="SL7",
            family="Scientific Linux",
            major_version=7,
            release_year=2014,
            end_of_life_year=2024,
            word_sizes=(64,),
            system_compiler=("gcc", "4.8"),
            abi_level=4,
            libc_version="2.17",
        ),
    ]


__all__ = [
    "OperatingSystemRelease",
    "OperatingSystemCatalog",
    "default_releases",
]
