"""Compatibility checking between software requirements and environments.

Experiment packages and tests declare :class:`SoftwareRequirements`; the
:class:`CompatibilityChecker` evaluates them against an
:class:`~repro.environment.configuration.EnvironmentConfiguration` and returns
a list of :class:`CompatibilityIssue` objects.  The builder and the validation
runner turn *error*-severity issues into build/test failures, while
*warning*-severity issues are recorded but do not fail the validation — this
mirrors how a stricter compiler or a deprecated ROOT interface first shows up
as warnings before eventually breaking a migration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro._common import ConfigurationError, version_at_least, version_less_than
from repro.environment.configuration import EnvironmentConfiguration


class IssueSeverity(enum.Enum):
    """Severity of a compatibility issue."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class IssueCategory(enum.Enum):
    """Which of the paper's three separated inputs an issue originates from.

    The explicit separation of the inputs (figure 1 of the paper) is what
    allows a failed validation to be attributed to the operating system, an
    external dependency or the experiment software itself.
    """

    OPERATING_SYSTEM = "operating_system"
    COMPILER = "compiler"
    EXTERNAL_DEPENDENCY = "external_dependency"
    EXPERIMENT_SOFTWARE = "experiment_software"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class CompatibilityIssue:
    """A single incompatibility between requirements and an environment."""

    severity: IssueSeverity
    category: IssueCategory
    component: str
    message: str

    def is_error(self) -> bool:
        """Return True for issues that must fail a build or test."""
        return self.severity is IssueSeverity.ERROR

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.category.value}/{self.component}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """Serialise for the common storage (e.g. persisted build results)."""
        return {
            "severity": self.severity.value,
            "category": self.category.value,
            "component": self.component,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CompatibilityIssue":
        """Reconstruct an issue serialised by :meth:`to_dict`."""
        return cls(
            severity=IssueSeverity(str(payload["severity"])),
            category=IssueCategory(str(payload["category"])),
            component=str(payload["component"]),
            message=str(payload["message"]),
        )


@dataclass(frozen=True)
class ExternalRequirement:
    """A requirement on one external software product."""

    product: str
    min_api_level: int = 0
    max_api_level: Optional[int] = None
    used_apis: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.max_api_level is not None and self.max_api_level < self.min_api_level:
            raise ConfigurationError(
                f"{self.product}: max_api_level < min_api_level"
            )

    def to_dict(self) -> Dict[str, object]:
        """Serialise for the common storage."""
        return {
            "product": self.product,
            "min_api_level": self.min_api_level,
            "max_api_level": self.max_api_level,
            "used_apis": sorted(self.used_apis),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExternalRequirement":
        """Reconstruct a requirement serialised by :meth:`to_dict`."""
        max_api_level = payload.get("max_api_level")
        return cls(
            product=str(payload["product"]),
            min_api_level=int(payload.get("min_api_level", 0)),  # type: ignore[arg-type]
            max_api_level=int(max_api_level) if max_api_level is not None else None,  # type: ignore[arg-type]
            used_apis=frozenset(
                str(api) for api in payload.get("used_apis", [])  # type: ignore[union-attr]
            ),
        )


@dataclass(frozen=True)
class SoftwareRequirements:
    """Environment requirements declared by a package or validation test.

    Attributes
    ----------
    min_compiler / max_compiler:
        Range of compiler versions the code is known to build with.
        ``max_compiler`` is *exclusive*: legacy Fortran code typically states
        "builds with anything below gcc 4.8" until it is ported.
    max_strictness:
        The highest compiler strictness the code tolerates without patches.
    word_sizes:
        Word sizes the code supports.  Much HERA-era code started 32-bit-only
        and had to be ported to 64 bit — exactly the kind of migration the
        sp-system validates.
    cxx_standard:
        Language standard the code is written against, or None.
    min_os_abi / max_os_abi:
        Range of OS ABI levels the code supports (``max_os_abi`` inclusive,
        None meaning "no known upper limit").
    externals:
        Requirements on external products.
    """

    min_compiler: str = "3.4"
    max_compiler: Optional[str] = None
    max_strictness: int = 99
    word_sizes: Tuple[int, ...] = (32, 64)
    cxx_standard: Optional[str] = None
    min_os_abi: int = 0
    max_os_abi: Optional[int] = None
    externals: Tuple[ExternalRequirement, ...] = ()

    def external(self, product: str) -> Optional[ExternalRequirement]:
        """Return the requirement on *product*, or None."""
        for requirement in self.externals:
            if requirement.product == product:
                return requirement
        return None

    def required_products(self) -> List[str]:
        """Return the external products this requirement set depends on."""
        return [requirement.product for requirement in self.externals]

    def to_dict(self) -> Dict[str, object]:
        """Serialise for the common storage."""
        return {
            "min_compiler": self.min_compiler,
            "max_compiler": self.max_compiler,
            "max_strictness": self.max_strictness,
            "word_sizes": list(self.word_sizes),
            "cxx_standard": self.cxx_standard,
            "min_os_abi": self.min_os_abi,
            "max_os_abi": self.max_os_abi,
            "externals": [requirement.to_dict() for requirement in self.externals],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SoftwareRequirements":
        """Reconstruct requirements serialised by :meth:`to_dict`."""
        max_compiler = payload.get("max_compiler")
        cxx_standard = payload.get("cxx_standard")
        max_os_abi = payload.get("max_os_abi")
        return cls(
            min_compiler=str(payload.get("min_compiler", "3.4")),
            max_compiler=str(max_compiler) if max_compiler is not None else None,
            max_strictness=int(payload.get("max_strictness", 99)),  # type: ignore[arg-type]
            word_sizes=tuple(
                int(size) for size in payload.get("word_sizes", (32, 64))  # type: ignore[union-attr]
            ),
            cxx_standard=str(cxx_standard) if cxx_standard is not None else None,
            min_os_abi=int(payload.get("min_os_abi", 0)),  # type: ignore[arg-type]
            max_os_abi=int(max_os_abi) if max_os_abi is not None else None,  # type: ignore[arg-type]
            externals=tuple(
                ExternalRequirement.from_dict(external)  # type: ignore[arg-type]
                for external in payload.get("externals", [])  # type: ignore[union-attr]
            ),
        )


class CompatibilityChecker:
    """Evaluates :class:`SoftwareRequirements` against an environment."""

    def check(
        self,
        requirements: SoftwareRequirements,
        configuration: EnvironmentConfiguration,
    ) -> List[CompatibilityIssue]:
        """Return all issues between *requirements* and *configuration*."""
        issues: List[CompatibilityIssue] = []
        issues.extend(self._check_word_size(requirements, configuration))
        issues.extend(self._check_os(requirements, configuration))
        issues.extend(self._check_compiler(requirements, configuration))
        issues.extend(self._check_externals(requirements, configuration))
        return issues

    def errors(
        self,
        requirements: SoftwareRequirements,
        configuration: EnvironmentConfiguration,
    ) -> List[CompatibilityIssue]:
        """Return only the error-severity issues."""
        return [issue for issue in self.check(requirements, configuration) if issue.is_error()]

    def is_compatible(
        self,
        requirements: SoftwareRequirements,
        configuration: EnvironmentConfiguration,
    ) -> bool:
        """Return True when no error-severity issue exists."""
        return not self.errors(requirements, configuration)

    def _check_word_size(
        self,
        requirements: SoftwareRequirements,
        configuration: EnvironmentConfiguration,
    ) -> List[CompatibilityIssue]:
        if configuration.word_size in requirements.word_sizes:
            return []
        return [
            CompatibilityIssue(
                severity=IssueSeverity.ERROR,
                category=IssueCategory.OPERATING_SYSTEM,
                component=f"{configuration.word_size}bit",
                message=(
                    "code only supports "
                    f"{'/'.join(str(size) for size in requirements.word_sizes)}-bit "
                    f"builds but the environment is {configuration.word_size}-bit"
                ),
            )
        ]

    def _check_os(
        self,
        requirements: SoftwareRequirements,
        configuration: EnvironmentConfiguration,
    ) -> List[CompatibilityIssue]:
        issues: List[CompatibilityIssue] = []
        abi = configuration.operating_system.abi_level
        if abi < requirements.min_os_abi:
            issues.append(
                CompatibilityIssue(
                    severity=IssueSeverity.ERROR,
                    category=IssueCategory.OPERATING_SYSTEM,
                    component=configuration.operating_system.name,
                    message=(
                        f"OS ABI level {abi} is older than the minimum "
                        f"{requirements.min_os_abi} required by the software"
                    ),
                )
            )
        if requirements.max_os_abi is not None and abi > requirements.max_os_abi:
            issues.append(
                CompatibilityIssue(
                    severity=IssueSeverity.ERROR,
                    category=IssueCategory.OPERATING_SYSTEM,
                    component=configuration.operating_system.name,
                    message=(
                        f"software has not been ported beyond OS ABI level "
                        f"{requirements.max_os_abi} (environment is {abi})"
                    ),
                )
            )
        return issues

    def _check_compiler(
        self,
        requirements: SoftwareRequirements,
        configuration: EnvironmentConfiguration,
    ) -> List[CompatibilityIssue]:
        issues: List[CompatibilityIssue] = []
        compiler = configuration.compiler
        if not version_at_least(compiler.version, requirements.min_compiler):
            issues.append(
                CompatibilityIssue(
                    severity=IssueSeverity.ERROR,
                    category=IssueCategory.COMPILER,
                    component=compiler.name,
                    message=(
                        f"compiler {compiler.version} is older than required "
                        f"minimum {requirements.min_compiler}"
                    ),
                )
            )
        if requirements.max_compiler is not None and not version_less_than(
            compiler.version, requirements.max_compiler
        ):
            issues.append(
                CompatibilityIssue(
                    severity=IssueSeverity.ERROR,
                    category=IssueCategory.COMPILER,
                    component=compiler.name,
                    message=(
                        f"code has not been ported to compilers newer than "
                        f"{requirements.max_compiler} (environment has "
                        f"{compiler.version})"
                    ),
                )
            )
        if compiler.strictness > requirements.max_strictness:
            issues.append(
                CompatibilityIssue(
                    severity=IssueSeverity.ERROR,
                    category=IssueCategory.COMPILER,
                    component=compiler.name,
                    message=(
                        f"compiler strictness {compiler.strictness} exceeds the "
                        f"maximum {requirements.max_strictness} the code tolerates"
                    ),
                )
            )
        elif compiler.strictness == requirements.max_strictness:
            issues.append(
                CompatibilityIssue(
                    severity=IssueSeverity.WARNING,
                    category=IssueCategory.COMPILER,
                    component=compiler.name,
                    message=(
                        "code compiles at the limit of its tolerated compiler "
                        "strictness; the next compiler generation will break it"
                    ),
                )
            )
        if (
            requirements.cxx_standard is not None
            and not compiler.supports_cxx_standard(requirements.cxx_standard)
        ):
            issues.append(
                CompatibilityIssue(
                    severity=IssueSeverity.ERROR,
                    category=IssueCategory.COMPILER,
                    component=compiler.name,
                    message=(
                        f"compiler does not support the required "
                        f"{requirements.cxx_standard} standard"
                    ),
                )
            )
        return issues

    def _check_externals(
        self,
        requirements: SoftwareRequirements,
        configuration: EnvironmentConfiguration,
    ) -> List[CompatibilityIssue]:
        issues: List[CompatibilityIssue] = []
        for requirement in requirements.externals:
            installed = configuration.external(requirement.product)
            if installed is None:
                issues.append(
                    CompatibilityIssue(
                        severity=IssueSeverity.ERROR,
                        category=IssueCategory.EXTERNAL_DEPENDENCY,
                        component=requirement.product,
                        message="required external product is not installed",
                    )
                )
                continue
            if installed.api_level < requirement.min_api_level:
                issues.append(
                    CompatibilityIssue(
                        severity=IssueSeverity.ERROR,
                        category=IssueCategory.EXTERNAL_DEPENDENCY,
                        component=installed.key,
                        message=(
                            f"API level {installed.api_level} is older than the "
                            f"required minimum {requirement.min_api_level}"
                        ),
                    )
                )
            if (
                requirement.max_api_level is not None
                and installed.api_level > requirement.max_api_level
            ):
                issues.append(
                    CompatibilityIssue(
                        severity=IssueSeverity.ERROR,
                        category=IssueCategory.EXTERNAL_DEPENDENCY,
                        component=installed.key,
                        message=(
                            f"software has not been ported beyond API level "
                            f"{requirement.max_api_level} (installed: "
                            f"{installed.api_level})"
                        ),
                    )
                )
            for api in sorted(requirement.used_apis):
                if installed.removes(api):
                    issues.append(
                        CompatibilityIssue(
                            severity=IssueSeverity.ERROR,
                            category=IssueCategory.EXTERNAL_DEPENDENCY,
                            component=installed.key,
                            message=f"used interface {api!r} was removed in this version",
                        )
                    )
                elif installed.deprecates(api):
                    issues.append(
                        CompatibilityIssue(
                            severity=IssueSeverity.WARNING,
                            category=IssueCategory.EXTERNAL_DEPENDENCY,
                            component=installed.key,
                            message=f"used interface {api!r} is deprecated",
                        )
                    )
                elif not installed.provides(api):
                    issues.append(
                        CompatibilityIssue(
                            severity=IssueSeverity.ERROR,
                            category=IssueCategory.EXTERNAL_DEPENDENCY,
                            component=installed.key,
                            message=f"used interface {api!r} is not provided",
                        )
                    )
            if not installed.compiler_is_sufficient(configuration.compiler.version):
                issues.append(
                    CompatibilityIssue(
                        severity=IssueSeverity.ERROR,
                        category=IssueCategory.EXTERNAL_DEPENDENCY,
                        component=installed.key,
                        message=(
                            f"external requires at least gcc {installed.min_compiler} "
                            f"but the environment has {configuration.compiler.version}"
                        ),
                    )
                )
            if (
                installed.requires_cxx_standard is not None
                and not configuration.compiler.supports_cxx_standard(
                    installed.requires_cxx_standard
                )
            ):
                issues.append(
                    CompatibilityIssue(
                        severity=IssueSeverity.ERROR,
                        category=IssueCategory.EXTERNAL_DEPENDENCY,
                        component=installed.key,
                        message=(
                            f"external requires the {installed.requires_cxx_standard} "
                            "standard which the compiler does not support"
                        ),
                    )
                )
        return issues


def summarise_issues(issues: Sequence[CompatibilityIssue]) -> str:
    """Return a one-line summary of *issues* suitable for log messages."""
    if not issues:
        return "compatible"
    errors = sum(1 for issue in issues if issue.is_error())
    warnings = len(issues) - errors
    return f"{errors} error(s), {warnings} warning(s)"


__all__ = [
    "IssueSeverity",
    "IssueCategory",
    "CompatibilityIssue",
    "ExternalRequirement",
    "SoftwareRequirements",
    "CompatibilityChecker",
    "summarise_issues",
]
