"""Environment substrate: operating systems, compilers and external software.

This package models the two "moving" inputs of the validation framework — the
operating system (with its compiler) and the external software dependencies —
as catalogues of versioned releases, plus the compatibility rules that decide
whether a given piece of experiment software builds and runs on a given
:class:`~repro.environment.configuration.EnvironmentConfiguration`.
"""

from repro.environment.compilers import Compiler, CompilerCatalog, default_compilers
from repro.environment.compatibility import (
    CompatibilityChecker,
    CompatibilityIssue,
    ExternalRequirement,
    IssueCategory,
    IssueSeverity,
    SoftwareRequirements,
    summarise_issues,
)
from repro.environment.configuration import (
    EnvironmentConfiguration,
    EnvironmentFactory,
    next_generation_configuration,
    sp_system_configurations,
    sp_system_root_versions,
)
from repro.environment.evolution import (
    EnvironmentEvent,
    EnvironmentTimeline,
    TimelineSnapshot,
)
from repro.environment.external import (
    ExternalSoftwareCatalog,
    ExternalSoftwareVersion,
    default_external_software,
)
from repro.environment.os_catalog import (
    OperatingSystemCatalog,
    OperatingSystemRelease,
    default_releases,
)

__all__ = [
    "Compiler",
    "CompilerCatalog",
    "default_compilers",
    "CompatibilityChecker",
    "CompatibilityIssue",
    "ExternalRequirement",
    "IssueCategory",
    "IssueSeverity",
    "SoftwareRequirements",
    "summarise_issues",
    "EnvironmentConfiguration",
    "EnvironmentFactory",
    "next_generation_configuration",
    "sp_system_configurations",
    "sp_system_root_versions",
    "EnvironmentEvent",
    "EnvironmentTimeline",
    "TimelineSnapshot",
    "ExternalSoftwareCatalog",
    "ExternalSoftwareVersion",
    "default_external_software",
    "OperatingSystemCatalog",
    "OperatingSystemRelease",
    "default_releases",
]
