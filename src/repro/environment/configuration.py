"""Environment configurations: the unit the sp-system validates against.

An :class:`EnvironmentConfiguration` bundles the three inputs the paper keeps
deliberately separate — the operating system (with word size and compiler) and
the set of installed external software — into one immutable description of a
machine the experiment software is built and validated on.  The five virtual
machine configurations named in the paper (SL5/32bit with gcc4.1 and gcc4.4,
SL5/64bit with gcc4.1 and gcc4.4, SL6/64bit with gcc4.4) are provided by
:func:`sp_system_configurations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro._common import ConfigurationError, stable_digest
from repro.environment.compilers import Compiler, CompilerCatalog
from repro.environment.external import (
    ExternalSoftwareCatalog,
    ExternalSoftwareVersion,
)
from repro.environment.os_catalog import OperatingSystemCatalog, OperatingSystemRelease


@dataclass(frozen=True)
class EnvironmentConfiguration:
    """An immutable description of a build/validation environment.

    Attributes
    ----------
    operating_system:
        The OS release installed on the machine.
    word_size:
        32 or 64 bit userland.
    compiler:
        The compiler used to build the experiment software; not necessarily
        the OS system compiler (SL5 images exist with both gcc 4.1 and 4.4).
    externals:
        Mapping from product name to the installed
        :class:`ExternalSoftwareVersion`.
    """

    operating_system: OperatingSystemRelease
    word_size: int
    compiler: Compiler
    externals: Tuple[ExternalSoftwareVersion, ...] = ()

    def __post_init__(self) -> None:
        if not self.operating_system.supports_word_size(self.word_size):
            raise ConfigurationError(
                f"{self.operating_system.name} has no {self.word_size}-bit images"
            )
        seen_products = set()
        for external in self.externals:
            if external.product in seen_products:
                raise ConfigurationError(
                    f"external product {external.product!r} listed twice"
                )
            seen_products.add(external.product)
            if not external.supports_word_size(self.word_size):
                raise ConfigurationError(
                    f"{external.key} has no {self.word_size}-bit distribution"
                )

    @property
    def label(self) -> str:
        """Short label used in reports, e.g. ``"SL6/64bit gcc4.4"``."""
        return (
            f"{self.operating_system.name}/{self.word_size}bit "
            f"{self.compiler.name}"
        )

    @property
    def key(self) -> str:
        """Filesystem/storage-safe identifier, e.g. ``"SL6_64bit_gcc4.4"``."""
        return (
            f"{self.operating_system.name}_{self.word_size}bit_{self.compiler.name}"
        )

    @property
    def full_label(self) -> str:
        """Label that includes installed external software versions."""
        externals = ", ".join(external.key for external in self.externals)
        return f"{self.label} [{externals}]" if externals else self.label

    def external(self, product: str) -> Optional[ExternalSoftwareVersion]:
        """Return the installed version of *product*, or None."""
        for external in self.externals:
            if external.product == product:
                return external
        return None

    def has_external(self, product: str) -> bool:
        """Return True if *product* is installed in this configuration."""
        return self.external(product) is not None

    def external_map(self) -> Dict[str, str]:
        """Return a ``{product: version}`` mapping of installed externals."""
        return {external.product: external.version for external in self.externals}

    def with_external(self, external: ExternalSoftwareVersion) -> "EnvironmentConfiguration":
        """Return a copy with *external* added or replacing the same product."""
        remaining = tuple(
            existing for existing in self.externals
            if existing.product != external.product
        )
        return replace(self, externals=remaining + (external,))

    def without_external(self, product: str) -> "EnvironmentConfiguration":
        """Return a copy with *product* removed from the installed externals."""
        remaining = tuple(
            existing for existing in self.externals if existing.product != product
        )
        return replace(self, externals=remaining)

    def with_compiler(self, compiler: Compiler) -> "EnvironmentConfiguration":
        """Return a copy using a different compiler."""
        return replace(self, compiler=compiler)

    def with_operating_system(
        self, operating_system: OperatingSystemRelease, word_size: Optional[int] = None
    ) -> "EnvironmentConfiguration":
        """Return a copy on a different OS release (and optionally word size)."""
        new_word_size = word_size if word_size is not None else self.word_size
        if not operating_system.supports_word_size(new_word_size):
            supported = operating_system.word_sizes
            new_word_size = max(supported)
        return replace(
            self, operating_system=operating_system, word_size=new_word_size
        )

    def describe(self) -> Dict[str, object]:
        """Return a JSON-serialisable description of the configuration."""
        return {
            "operating_system": self.operating_system.name,
            "word_size": self.word_size,
            "compiler": self.compiler.name,
            "externals": self.external_map(),
        }

    def differences(self, other: "EnvironmentConfiguration") -> List[str]:
        """Return a human-readable list of differences with *other*.

        The diagnosis engine uses this to decide which of the three inputs
        changed between the last successful validation and a failing one.
        """
        differences: List[str] = []
        if self.operating_system.name != other.operating_system.name:
            differences.append(
                "operating_system: "
                f"{other.operating_system.name} -> {self.operating_system.name}"
            )
        if self.word_size != other.word_size:
            differences.append(f"word_size: {other.word_size} -> {self.word_size}")
        if self.compiler.name != other.compiler.name:
            differences.append(
                f"compiler: {other.compiler.name} -> {self.compiler.name}"
            )
        mine = self.external_map()
        theirs = other.external_map()
        for product in sorted(set(mine) | set(theirs)):
            old = theirs.get(product)
            new = mine.get(product)
            if old != new:
                differences.append(f"external {product}: {old} -> {new}")
        return differences


def configuration_fingerprint(configuration: EnvironmentConfiguration) -> str:
    """Stable content fingerprint of the build-relevant configuration state.

    Deliberately finer-grained than :attr:`EnvironmentConfiguration.key`:
    two configurations sharing an OS/word-size/compiler label but differing
    in installed externals (or a configuration whose compiler or OS release
    was swapped in place by an environment evolution event) must not be
    mistaken for one another.  The build cache keys on it, and the
    validation history ledger records it per cell so a longitudinal query
    can see that "the same" configuration changed underneath an experiment.

    The fingerprint is memoised on the frozen configuration instance: the
    build cache re-derives it on every lookup and store, and the history
    ledger on every ingested cell, so a 10k-cell campaign would otherwise
    recompute the identical digest tens of thousands of times.  The
    dataclass hashes by value, which makes it a sound memo key; an
    unhashable hand-built variant falls back to direct computation.
    """
    try:
        cached = _FINGERPRINTS.get(configuration)
    except TypeError:
        return _configuration_fingerprint(configuration)
    if cached is None:
        if len(_FINGERPRINTS) >= _FINGERPRINTS_MAX:
            _FINGERPRINTS.clear()
        cached = _configuration_fingerprint(configuration)
        _FINGERPRINTS[configuration] = cached
    return cached


def _configuration_fingerprint(configuration: EnvironmentConfiguration) -> str:
    return stable_digest(
        configuration.key,
        configuration.operating_system.name,
        configuration.operating_system.abi_level,
        configuration.word_size,
        configuration.compiler.family,
        configuration.compiler.version,
        configuration.compiler.strictness,
        sorted(configuration.external_map().items()),
    )


#: Memo table of :func:`configuration_fingerprint`, keyed by the frozen
#: configuration; bounded so synthetic fleets of generated configurations
#: cannot grow it without limit.
_FINGERPRINTS: Dict[EnvironmentConfiguration, str] = {}
_FINGERPRINTS_MAX = 65536


class EnvironmentFactory:
    """Convenience factory assembling configurations from the catalogues."""

    def __init__(
        self,
        os_catalog: Optional[OperatingSystemCatalog] = None,
        compiler_catalog: Optional[CompilerCatalog] = None,
        external_catalog: Optional[ExternalSoftwareCatalog] = None,
    ) -> None:
        self.os_catalog = os_catalog or OperatingSystemCatalog()
        self.compiler_catalog = compiler_catalog or CompilerCatalog()
        self.external_catalog = external_catalog or ExternalSoftwareCatalog()

    def create(
        self,
        operating_system: str,
        word_size: int,
        compiler: str,
        externals: Optional[Mapping[str, str]] = None,
    ) -> EnvironmentConfiguration:
        """Build a configuration from catalogue names and versions."""
        os_release = self.os_catalog.get(operating_system)
        compiler_release = self.compiler_catalog.get(compiler)
        resolved: List[ExternalSoftwareVersion] = []
        for product, version in (externals or {}).items():
            resolved.append(self.external_catalog.get(product, version))
        return EnvironmentConfiguration(
            operating_system=os_release,
            word_size=word_size,
            compiler=compiler_release,
            externals=tuple(resolved),
        )


#: External software installed on every sp-system virtual machine image.
DEFAULT_EXTERNALS_32BIT: Dict[str, str] = {
    "ROOT": "5.34",
    "CERNLIB": "2006",
    "GEANT3": "3.21",
    "MCGEN": "1.4",
    "MySQL": "5.0",
}

DEFAULT_EXTERNALS_64BIT: Dict[str, str] = {
    "ROOT": "5.34",
    "CERNLIB": "2006",
    "GEANT3": "3.21",
    "MCGEN": "1.4",
    "MySQL": "5.5",
}


def sp_system_configurations(
    factory: Optional[EnvironmentFactory] = None,
) -> List[EnvironmentConfiguration]:
    """Return the five virtual machine configurations named in the paper.

    "Within the current sp-system there are virtual machines with five
    different configurations: SL5/32bit with gcc4.1 and gcc4.4, SL5/64bit
    with gcc4.1 and gcc4.4, SL6/64bit with gcc4.4."
    """
    factory = factory or EnvironmentFactory()
    specs = [
        ("SL5", 32, "gcc4.1", DEFAULT_EXTERNALS_32BIT),
        ("SL5", 32, "gcc4.4", DEFAULT_EXTERNALS_32BIT),
        ("SL5", 64, "gcc4.1", DEFAULT_EXTERNALS_64BIT),
        ("SL5", 64, "gcc4.4", DEFAULT_EXTERNALS_64BIT),
        ("SL6", 64, "gcc4.4", DEFAULT_EXTERNALS_64BIT),
    ]
    return [
        factory.create(os_name, word_size, compiler, externals)
        for os_name, word_size, compiler, externals in specs
    ]


def sp_system_root_versions() -> List[str]:
    """The ROOT versions installed on the sp-system (paper section 3.1)."""
    return ["5.26", "5.28", "5.30", "5.32", "5.34"]


def next_generation_configuration(
    factory: Optional[EnvironmentFactory] = None,
) -> EnvironmentConfiguration:
    """The SL7 + ROOT 6 configuration named as the "next challenge"."""
    factory = factory or EnvironmentFactory()
    externals = dict(DEFAULT_EXTERNALS_64BIT)
    externals["ROOT"] = "6.02"
    externals["MCGEN"] = "2.0"
    return factory.create("SL7", 64, "gcc4.8", externals)


__all__ = [
    "EnvironmentConfiguration",
    "EnvironmentFactory",
    "configuration_fingerprint",
    "sp_system_configurations",
    "sp_system_root_versions",
    "next_generation_configuration",
    "DEFAULT_EXTERNALS_32BIT",
    "DEFAULT_EXTERNALS_64BIT",
]
