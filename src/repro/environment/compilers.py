"""Compiler models used when simulating experiment software builds.

The sp-system builds the experiment software under several compiler versions
(gcc 4.1 and gcc 4.4 on SL5, gcc 4.4 on SL6, with gcc 4.8 arriving with SL7).
Newer compilers are stricter: code that compiled cleanly with an old gcc may
produce new warnings or hard errors.  The :class:`Compiler` model captures the
properties the validation framework cares about — version, strictness,
supported language standards — without simulating actual compilation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro._common import ConfigurationError, parse_version, version_at_least


#: Language standards in increasing order of modernity.
CXX_STANDARDS = ("c++98", "c++03", "gnu++98", "c++11", "c++14")
FORTRAN_STANDARDS = ("f77", "f90", "f95", "f2003")


@dataclass(frozen=True)
class Compiler:
    """A compiler release available on sp-system machines.

    Attributes
    ----------
    family:
        Compiler family, e.g. ``"gcc"``.
    version:
        Dotted version string such as ``"4.4"``.
    release_year:
        Year the compiler was released.
    strictness:
        Integer describing how aggressively the compiler rejects legacy
        idioms.  A package whose ``max_strictness`` is below the compiler's
        strictness fails to compile until it is patched.
    cxx_standards:
        C++ standards this compiler can target.
    fortran_standards:
        Fortran standards this compiler can target (HEP software of the HERA
        era is largely Fortran).
    default_cxx_standard:
        The standard used when a package does not request one explicitly.
    """

    family: str
    version: str
    release_year: int
    strictness: int
    cxx_standards: Tuple[str, ...]
    fortran_standards: Tuple[str, ...]
    default_cxx_standard: str

    def __post_init__(self) -> None:
        if not self.family:
            raise ConfigurationError("compiler family must be non-empty")
        parse_version(self.version)
        if self.default_cxx_standard not in self.cxx_standards:
            raise ConfigurationError(
                f"{self.name}: default standard {self.default_cxx_standard!r} "
                "not among supported standards"
            )
        if self.strictness < 0:
            raise ConfigurationError("compiler strictness must be non-negative")

    @property
    def name(self) -> str:
        """Canonical short name, e.g. ``"gcc4.4"``."""
        return f"{self.family}{self.version}"

    def supports_cxx_standard(self, standard: str) -> bool:
        """Return True if this compiler can target the given C++ standard."""
        return standard in self.cxx_standards

    def supports_fortran_standard(self, standard: str) -> bool:
        """Return True if this compiler can target the given Fortran standard."""
        return standard in self.fortran_standards

    def is_at_least(self, version: str) -> bool:
        """Return True if this compiler's version is >= *version*."""
        return version_at_least(self.version, version)

    def is_newer_than(self, other: "Compiler") -> bool:
        """Return True if this compiler is a newer release than *other*."""
        if self.family != other.family:
            raise ConfigurationError(
                f"cannot order compilers of different families "
                f"({self.family} vs {other.family})"
            )
        return parse_version(self.version) > parse_version(other.version)


class CompilerCatalog:
    """Registry of compiler releases, keyed by canonical name (``gcc4.4``)."""

    def __init__(self, compilers: Optional[Iterable[Compiler]] = None):
        self._compilers: Dict[str, Compiler] = {}
        for compiler in compilers if compilers is not None else default_compilers():
            self.register(compiler)

    def register(self, compiler: Compiler) -> None:
        """Add *compiler* to the catalogue, rejecting duplicates."""
        if compiler.name in self._compilers:
            raise ConfigurationError(f"duplicate compiler {compiler.name!r}")
        self._compilers[compiler.name] = compiler

    def get(self, name_or_version: str, family: str = "gcc") -> Compiler:
        """Look up a compiler by canonical name (``gcc4.4``) or version (``4.4``)."""
        if name_or_version in self._compilers:
            return self._compilers[name_or_version]
        candidate = f"{family}{name_or_version}"
        if candidate in self._compilers:
            return self._compilers[candidate]
        known = ", ".join(sorted(self._compilers))
        raise ConfigurationError(
            f"unknown compiler {name_or_version!r} (known: {known})"
        )

    def __contains__(self, name: str) -> bool:
        return name in self._compilers

    def __len__(self) -> int:
        return len(self._compilers)

    def all(self) -> List[Compiler]:
        """Return all compilers ordered by family then version."""
        return sorted(
            self._compilers.values(),
            key=lambda compiler: (compiler.family, parse_version(compiler.version)),
        )

    def family(self, family: str) -> List[Compiler]:
        """Return all compilers of *family*, oldest first."""
        return [compiler for compiler in self.all() if compiler.family == family]

    def latest(self, family: str = "gcc", year: Optional[int] = None) -> Compiler:
        """Return the newest compiler of *family*, optionally as of *year*."""
        candidates = [
            compiler
            for compiler in self.family(family)
            if year is None or compiler.release_year <= year
        ]
        if not candidates:
            raise ConfigurationError(
                f"no {family} compiler released by {year}" if year is not None
                else f"no compiler of family {family!r}"
            )
        return candidates[-1]


def default_compilers() -> List[Compiler]:
    """The gcc lineage relevant to the HERA software preservation effort."""
    return [
        Compiler(
            family="gcc",
            version="3.4",
            release_year=2004,
            strictness=1,
            cxx_standards=("c++98", "gnu++98"),
            fortran_standards=("f77", "f90"),
            default_cxx_standard="gnu++98",
        ),
        Compiler(
            family="gcc",
            version="4.1",
            release_year=2006,
            strictness=2,
            cxx_standards=("c++98", "c++03", "gnu++98"),
            fortran_standards=("f77", "f90", "f95"),
            default_cxx_standard="gnu++98",
        ),
        Compiler(
            family="gcc",
            version="4.4",
            release_year=2009,
            strictness=3,
            cxx_standards=("c++98", "c++03", "gnu++98"),
            fortran_standards=("f77", "f90", "f95", "f2003"),
            default_cxx_standard="gnu++98",
        ),
        Compiler(
            family="gcc",
            version="4.8",
            release_year=2013,
            strictness=4,
            cxx_standards=("c++98", "c++03", "gnu++98", "c++11"),
            fortran_standards=("f77", "f90", "f95", "f2003"),
            default_cxx_standard="gnu++98",
        ),
        Compiler(
            family="gcc",
            version="4.9",
            release_year=2014,
            strictness=5,
            cxx_standards=("c++98", "c++03", "gnu++98", "c++11", "c++14"),
            fortran_standards=("f77", "f90", "f95", "f2003"),
            default_cxx_standard="gnu++98",
        ),
    ]


__all__ = [
    "Compiler",
    "CompilerCatalog",
    "default_compilers",
    "CXX_STANDARDS",
    "FORTRAN_STANDARDS",
]
