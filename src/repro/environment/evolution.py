"""Simulated evolution of the computing environment over time.

The motivation for the sp-system is that the computing environment keeps
changing underneath preserved software: operating systems reach end of life,
new compiler generations arrive, external software removes old interfaces.
:class:`EnvironmentTimeline` generates that history year by year so that the
migration-versus-freeze ablation and the lifetime model can replay it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro._common import ConfigurationError
from repro.environment.compilers import Compiler, CompilerCatalog
from repro.environment.configuration import (
    DEFAULT_EXTERNALS_64BIT,
    EnvironmentConfiguration,
    EnvironmentFactory,
)
from repro.environment.external import ExternalSoftwareCatalog, ExternalSoftwareVersion
from repro.environment.os_catalog import OperatingSystemCatalog, OperatingSystemRelease


@dataclass(frozen=True)
class EnvironmentEvent:
    """A single change of the computing landscape in a given year."""

    year: int
    kind: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"{self.year}: [{self.kind}] {self.subject} — {self.detail}"


#: Event kinds produced by the timeline.
EVENT_OS_RELEASE = "os-release"
EVENT_OS_EOL = "os-end-of-life"
EVENT_COMPILER_RELEASE = "compiler-release"
EVENT_EXTERNAL_RELEASE = "external-release"


@dataclass(frozen=True)
class TimelineSnapshot:
    """The state of the computing landscape at the end of a year."""

    year: int
    events: Tuple[EnvironmentEvent, ...]
    recommended: EnvironmentConfiguration
    supported_operating_systems: Tuple[str, ...]

    def has_events(self) -> bool:
        """Return True if anything changed during the year."""
        return bool(self.events)


class EnvironmentTimeline:
    """Replays the evolution of OS, compiler and external software releases.

    The timeline is driven entirely by the release and end-of-life years
    recorded in the catalogues, so registering additional releases
    automatically extends the simulated future.
    """

    def __init__(
        self,
        os_catalog: Optional[OperatingSystemCatalog] = None,
        compiler_catalog: Optional[CompilerCatalog] = None,
        external_catalog: Optional[ExternalSoftwareCatalog] = None,
        tracked_products: Optional[List[str]] = None,
    ) -> None:
        self.os_catalog = os_catalog or OperatingSystemCatalog()
        self.compiler_catalog = compiler_catalog or CompilerCatalog()
        self.external_catalog = external_catalog or ExternalSoftwareCatalog()
        self._factory = EnvironmentFactory(
            self.os_catalog, self.compiler_catalog, self.external_catalog
        )
        self.tracked_products = (
            list(tracked_products)
            if tracked_products is not None
            else list(DEFAULT_EXTERNALS_64BIT)
        )

    def events_in(self, year: int) -> List[EnvironmentEvent]:
        """Return the environment changes happening in *year*."""
        events: List[EnvironmentEvent] = []
        for release in self.os_catalog.all():
            if release.release_year == year:
                events.append(
                    EnvironmentEvent(
                        year=year,
                        kind=EVENT_OS_RELEASE,
                        subject=release.name,
                        detail=f"{release.label} released",
                    )
                )
            if release.end_of_life_year == year:
                events.append(
                    EnvironmentEvent(
                        year=year,
                        kind=EVENT_OS_EOL,
                        subject=release.name,
                        detail=f"{release.label} reaches end of security support",
                    )
                )
        for compiler in self.compiler_catalog.all():
            if compiler.release_year == year:
                events.append(
                    EnvironmentEvent(
                        year=year,
                        kind=EVENT_COMPILER_RELEASE,
                        subject=compiler.name,
                        detail=f"{compiler.name} released (strictness {compiler.strictness})",
                    )
                )
        for product in self.external_catalog.products():
            for version in self.external_catalog.versions_of(product):
                if version.release_year == year:
                    removed = (
                        f", removes {len(version.removed_apis)} legacy interface(s)"
                        if version.removed_apis
                        else ""
                    )
                    events.append(
                        EnvironmentEvent(
                            year=year,
                            kind=EVENT_EXTERNAL_RELEASE,
                            subject=version.key,
                            detail=f"{version.key} released{removed}",
                        )
                    )
        return sorted(events, key=lambda event: (event.kind, event.subject))

    def recommended_configuration(self, year: int) -> EnvironmentConfiguration:
        """The configuration a new machine deployed in *year* would use.

        The recommendation is the most recent supported OS with its widest
        word size, the newest compiler released by then and the newest
        version of every tracked external product available for that word
        size.
        """
        supported = self.os_catalog.supported_in(year)
        candidates = supported or self.os_catalog.released_in(year)
        if not candidates:
            raise ConfigurationError(f"no operating system available in {year}")
        os_release = candidates[-1]
        word_size = max(os_release.word_sizes)
        compiler = self.compiler_catalog.latest(year=year)
        externals: Dict[str, str] = {}
        for product in self.tracked_products:
            if product not in self.external_catalog:
                continue
            versions = [
                version
                for version in self.external_catalog.versions_of(product)
                if version.release_year <= year
                and version.supports_word_size(word_size)
            ]
            if versions:
                externals[product] = versions[-1].version
        return self._factory.create(os_release.name, word_size, compiler.name, externals)

    def snapshot(self, year: int) -> TimelineSnapshot:
        """Return the events of *year* together with the recommended setup."""
        return TimelineSnapshot(
            year=year,
            events=tuple(self.events_in(year)),
            recommended=self.recommended_configuration(year),
            supported_operating_systems=tuple(
                release.name for release in self.os_catalog.supported_in(year)
            ),
        )

    def replay(self, start_year: int, end_year: int) -> Iterator[TimelineSnapshot]:
        """Yield a snapshot for every year from *start_year* to *end_year*."""
        if end_year < start_year:
            raise ConfigurationError("end_year must not precede start_year")
        for year in range(start_year, end_year + 1):
            yield self.snapshot(year)

    def operating_system_is_safe(self, name: str, year: int) -> bool:
        """Return True if OS *name* still receives security support in *year*."""
        return self.os_catalog.get(name).is_supported_in(year)


__all__ = [
    "EnvironmentEvent",
    "TimelineSnapshot",
    "EnvironmentTimeline",
    "EVENT_OS_RELEASE",
    "EVENT_OS_EOL",
    "EVENT_COMPILER_RELEASE",
    "EVENT_EXTERNAL_RELEASE",
]
