"""Catalogue of external software dependencies.

The paper identifies *external software dependencies* as one of the three
separate inputs to the validation system, with ROOT as the canonical example
(versions 5.26, 5.28, 5.30, 5.32 and 5.34 are installed on the sp-system
machines, and compatibility with ROOT 6 is listed as an upcoming challenge).
This module models such external packages: each version exposes an *API
level*, may deprecate or remove interfaces, and carries its own build
requirements (word size, minimum compiler, language standard).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro._common import (
    ConfigurationError,
    ensure_identifier,
    parse_version,
    version_at_least,
)


@dataclass(frozen=True)
class ExternalSoftwareVersion:
    """One installable version of an external software product.

    Attributes
    ----------
    product:
        Product name, e.g. ``"ROOT"`` or ``"CERNLIB"``.
    version:
        Version string, e.g. ``"5.34"``.
    release_year:
        Year of release; used by the environment evolution timeline.
    api_level:
        Monotonically increasing integer per product.  Experiment packages
        declare the minimum API level they need and, optionally, the maximum
        API level they have been ported to.
    provided_apis:
        Named interfaces this version provides.
    removed_apis:
        Interfaces that previous versions provided but this one removed
        (e.g. ROOT 6 removing the CINT interpreter interfaces).
    deprecated_apis:
        Interfaces still present but scheduled for removal; using them
        produces warnings rather than failures.
    min_compiler:
        Minimum gcc version required to build or link against this version.
    word_sizes:
        Word sizes for which binary distributions exist.
    requires_cxx_standard:
        C++ standard required to compile against the headers (ROOT 6 requires
        C++11), or None when any standard works.
    """

    product: str
    version: str
    release_year: int
    api_level: int
    provided_apis: FrozenSet[str] = field(default_factory=frozenset)
    removed_apis: FrozenSet[str] = field(default_factory=frozenset)
    deprecated_apis: FrozenSet[str] = field(default_factory=frozenset)
    min_compiler: str = "3.4"
    word_sizes: Tuple[int, ...] = (32, 64)
    requires_cxx_standard: Optional[str] = None

    def __post_init__(self) -> None:
        ensure_identifier(self.product, "external product name")
        parse_version(self.version)
        if self.api_level < 0:
            raise ConfigurationError("api_level must be non-negative")
        overlap = self.provided_apis & self.removed_apis
        if overlap:
            raise ConfigurationError(
                f"{self.key}: APIs cannot be both provided and removed: "
                f"{sorted(overlap)}"
            )

    @property
    def key(self) -> str:
        """Canonical identifier, e.g. ``"ROOT-5.34"``."""
        return f"{self.product}-{self.version}"

    def provides(self, api: str) -> bool:
        """Return True if the named interface is available in this version."""
        return api in self.provided_apis

    def deprecates(self, api: str) -> bool:
        """Return True if the named interface is deprecated in this version."""
        return api in self.deprecated_apis

    def removes(self, api: str) -> bool:
        """Return True if the named interface was removed in this version."""
        return api in self.removed_apis

    def supports_word_size(self, word_size: int) -> bool:
        """Return True if binaries exist for the given word size."""
        return word_size in self.word_sizes

    def compiler_is_sufficient(self, compiler_version: str) -> bool:
        """Return True if *compiler_version* meets the minimum requirement."""
        return version_at_least(compiler_version, self.min_compiler)


class ExternalSoftwareCatalog:
    """Registry of external software products and their versions."""

    def __init__(
        self, versions: Optional[Iterable[ExternalSoftwareVersion]] = None
    ) -> None:
        self._versions: Dict[str, Dict[str, ExternalSoftwareVersion]] = {}
        for version in versions if versions is not None else default_external_software():
            self.register(version)

    def register(self, version: ExternalSoftwareVersion) -> None:
        """Add a product version to the catalogue, rejecting duplicates."""
        product_versions = self._versions.setdefault(version.product, {})
        if version.version in product_versions:
            raise ConfigurationError(f"duplicate external version {version.key!r}")
        product_versions[version.version] = version

    def products(self) -> List[str]:
        """Return the known product names, sorted."""
        return sorted(self._versions)

    def versions_of(self, product: str) -> List[ExternalSoftwareVersion]:
        """Return all versions of *product*, oldest API level first."""
        try:
            versions = self._versions[product]
        except KeyError:
            known = ", ".join(self.products())
            raise ConfigurationError(
                f"unknown external product {product!r} (known: {known})"
            ) from None
        return sorted(versions.values(), key=lambda entry: entry.api_level)

    def get(self, product: str, version: str) -> ExternalSoftwareVersion:
        """Return a specific product version."""
        for candidate in self.versions_of(product):
            if candidate.version == version:
                return candidate
        available = ", ".join(entry.version for entry in self.versions_of(product))
        raise ConfigurationError(
            f"unknown version {version!r} of {product} (available: {available})"
        )

    def latest(self, product: str, year: Optional[int] = None) -> ExternalSoftwareVersion:
        """Return the newest version of *product*, optionally as of *year*."""
        candidates = [
            entry
            for entry in self.versions_of(product)
            if year is None or entry.release_year <= year
        ]
        if not candidates:
            raise ConfigurationError(
                f"no version of {product} released by {year}"
            )
        return candidates[-1]

    def __contains__(self, product: str) -> bool:
        return product in self._versions

    def __len__(self) -> int:
        return sum(len(versions) for versions in self._versions.values())


#: Interfaces used by the synthetic experiment software.  The names mirror the
#: real ROOT transition: the CINT interpreter and the old TCint bindings were
#: removed with ROOT 6, while TTree/TH1-style interfaces survived.
ROOT_CORE_APIS = frozenset({"TTree", "TH1", "TFile", "TLorentzVector", "TMinuit"})
ROOT_LEGACY_APIS = frozenset({"CINT", "TCint", "RootCintDictionary", "PROOF-lite-legacy"})
ROOT6_NEW_APIS = frozenset({"Cling", "TTreeReader"})

CERNLIB_APIS = frozenset({"HBOOK", "PAW", "ZEBRA", "KUIP", "GEANT3-interface"})
MYSQL_APIS = frozenset({"mysql-client-api"})
GEANT_APIS = frozenset({"geometry", "tracking", "digitisation"})


def default_external_software() -> List[ExternalSoftwareVersion]:
    """External software versions installed on the sp-system machines.

    The ROOT versions are exactly the ones listed in the paper (5.26 to 5.34)
    plus ROOT 6.02, which the paper names as the next compatibility challenge.
    CERNLIB, GEANT3, a Monte Carlo generator library and MySQL are included
    because a level-4 preservation programme of a HERA experiment depends on
    them; their precise identity does not matter to the framework, only that
    they are versioned external inputs.
    """
    catalogue: List[ExternalSoftwareVersion] = []

    root_versions = [
        ("5.26", 2009, 1),
        ("5.28", 2010, 2),
        ("5.30", 2011, 3),
        ("5.32", 2012, 4),
        ("5.34", 2012, 5),
    ]
    for version, year, api_level in root_versions:
        catalogue.append(
            ExternalSoftwareVersion(
                product="ROOT",
                version=version,
                release_year=year,
                api_level=api_level,
                provided_apis=ROOT_CORE_APIS | ROOT_LEGACY_APIS,
                deprecated_apis=frozenset({"PROOF-lite-legacy"})
                if api_level >= 4
                else frozenset(),
                min_compiler="4.1",
                word_sizes=(32, 64),
            )
        )
    catalogue.append(
        ExternalSoftwareVersion(
            product="ROOT",
            version="6.02",
            release_year=2014,
            api_level=6,
            provided_apis=ROOT_CORE_APIS | ROOT6_NEW_APIS,
            removed_apis=ROOT_LEGACY_APIS,
            deprecated_apis=frozenset(),
            min_compiler="4.8",
            word_sizes=(64,),
            requires_cxx_standard="c++11",
        )
    )

    catalogue.extend(
        [
            ExternalSoftwareVersion(
                product="CERNLIB",
                version="2005",
                release_year=2005,
                api_level=1,
                provided_apis=CERNLIB_APIS,
                min_compiler="3.4",
                word_sizes=(32,),
            ),
            ExternalSoftwareVersion(
                product="CERNLIB",
                version="2006",
                release_year=2006,
                api_level=2,
                provided_apis=CERNLIB_APIS,
                min_compiler="3.4",
                word_sizes=(32, 64),
            ),
            ExternalSoftwareVersion(
                product="GEANT3",
                version="3.21",
                release_year=1994,
                api_level=1,
                provided_apis=GEANT_APIS,
                min_compiler="3.4",
                word_sizes=(32, 64),
            ),
            ExternalSoftwareVersion(
                product="MCGEN",
                version="1.4",
                release_year=2006,
                api_level=1,
                provided_apis=frozenset({"lepto", "pythia6", "django"}),
                min_compiler="3.4",
                word_sizes=(32, 64),
            ),
            ExternalSoftwareVersion(
                product="MCGEN",
                version="2.0",
                release_year=2012,
                api_level=2,
                provided_apis=frozenset({"lepto", "pythia6", "pythia8", "django"}),
                min_compiler="4.4",
                word_sizes=(64,),
            ),
            ExternalSoftwareVersion(
                product="MySQL",
                version="5.0",
                release_year=2005,
                api_level=1,
                provided_apis=MYSQL_APIS,
                min_compiler="3.4",
                word_sizes=(32, 64),
            ),
            ExternalSoftwareVersion(
                product="MySQL",
                version="5.5",
                release_year=2010,
                api_level=2,
                provided_apis=MYSQL_APIS,
                min_compiler="4.1",
                word_sizes=(32, 64),
            ),
        ]
    )
    return catalogue


__all__ = [
    "ExternalSoftwareVersion",
    "ExternalSoftwareCatalog",
    "default_external_software",
    "ROOT_CORE_APIS",
    "ROOT_LEGACY_APIS",
    "ROOT6_NEW_APIS",
    "CERNLIB_APIS",
]
