"""Provisioning: building the sp-system's image library from recipes.

The experiments provide "recipes" describing which OS, compiler and external
software a machine needs; the IT department turns them into virtual machine
images.  :class:`ProvisioningService` automates that: given environment
configurations (or the standard five sp-system ones) it builds the images on
a hypervisor and can attach new client machines, checking the two documented
client requirements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro._common import ConfigurationError
from repro.environment.configuration import (
    EnvironmentConfiguration,
    sp_system_configurations,
)
from repro.storage.common_storage import CommonStorage
from repro.virtualization.client import (
    BatchWorkerClient,
    ClientMachine,
    GridWorkerClient,
)
from repro.virtualization.hypervisor import Hypervisor
from repro.virtualization.image import VirtualMachineImage


@dataclass
class ProvisioningReport:
    """What a provisioning round created."""

    images_built: List[str] = field(default_factory=list)
    clients_started: List[str] = field(default_factory=list)
    clients_rejected: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def n_images(self) -> int:
        return len(self.images_built)

    @property
    def n_clients(self) -> int:
        return len(self.clients_started)


class ProvisioningService:
    """Builds images and attaches clients according to recipes."""

    def __init__(
        self,
        hypervisor: Optional[Hypervisor] = None,
        storage: Optional[CommonStorage] = None,
    ) -> None:
        self.storage = storage or CommonStorage()
        self.hypervisor = hypervisor or Hypervisor(storage=self.storage)
        if self.hypervisor.storage is None:
            self.hypervisor.storage = self.storage
        self._external_clients: Dict[str, ClientMachine] = {}

    def provision_standard_images(self) -> ProvisioningReport:
        """Build the five standard sp-system virtual machine images."""
        return self.provision_images(sp_system_configurations())

    def provision_images(
        self, configurations: Iterable[EnvironmentConfiguration]
    ) -> ProvisioningReport:
        """Build one image per configuration (skipping already-built ones)."""
        report = ProvisioningReport()
        for configuration in configurations:
            existing = self.hypervisor.image_for_configuration(configuration)
            if existing is not None:
                continue
            image = self.hypervisor.build_image(configuration)
            report.images_built.append(image.name)
        return report

    def start_validation_clients(
        self, one_per_image: bool = True
    ) -> ProvisioningReport:
        """Start one validation client per usable image."""
        report = ProvisioningReport()
        for image in self.hypervisor.usable_images():
            client_name = f"{image.name}-validation"
            already_running = any(
                client.name == client_name
                for client in self.hypervisor.running_clients()
            )
            if one_per_image and already_running:
                continue
            client = self.hypervisor.start_client(image.name, client_name)
            report.clients_started.append(client.name)
        return report

    def attach_batch_worker(
        self, name: str, configuration: EnvironmentConfiguration
    ) -> BatchWorkerClient:
        """Attach a physical batch worker node as an additional client."""
        client = BatchWorkerClient(name, configuration, storage=self.storage)
        self._register_external(client)
        return client

    def attach_grid_worker(
        self, name: str, configuration: EnvironmentConfiguration
    ) -> GridWorkerClient:
        """Attach a grid worker node as an additional client."""
        client = GridWorkerClient(name, configuration, storage=self.storage)
        self._register_external(client)
        return client

    def _register_external(self, client: ClientMachine) -> None:
        missing = client.missing_requirements()
        if missing:
            raise ConfigurationError(
                f"client {client.name} does not meet the sp-system requirements: "
                + "; ".join(missing)
            )
        if client.name in self._external_clients:
            raise ConfigurationError(f"client {client.name!r} already attached")
        self._external_clients[client.name] = client

    def external_clients(self) -> List[ClientMachine]:
        """All attached non-VM clients, sorted by name."""
        return [self._external_clients[name] for name in sorted(self._external_clients)]

    def all_clients(self) -> List[ClientMachine]:
        """Every client currently attached to the sp-system."""
        clients: List[ClientMachine] = list(self.hypervisor.running_clients())
        clients.extend(self.external_clients())
        return sorted(clients, key=lambda client: client.name)

    def clients_for_configuration(self, configuration_key: str) -> List[ClientMachine]:
        """Clients whose environment matches *configuration_key*."""
        return [
            client for client in self.all_clients()
            if client.configuration.key == configuration_key
        ]


__all__ = ["ProvisioningService", "ProvisioningReport"]
