"""Cron scheduling on sp-system clients.

The second requirement for a new client machine, besides access to the common
storage, is "the ability to run a cron-job on the client".  The regular
automated builds and validations of the sp-system are driven by exactly such
cron jobs.  This module implements a small cron expression parser (minute,
hour, day-of-month, month, day-of-week) and a scheduler that, given a
simulated clock, determines which jobs fire in a time window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro._common import SchedulingError
from repro.storage.bookkeeping import SimulatedClock, format_timestamp


_FIELD_RANGES = (
    ("minute", 0, 59),
    ("hour", 0, 23),
    ("day_of_month", 1, 31),
    ("month", 1, 12),
    ("day_of_week", 0, 6),
)

_DAYS_PER_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


@dataclass(frozen=True)
class CronExpression:
    """A parsed five-field cron expression."""

    text: str
    minutes: frozenset
    hours: frozenset
    days_of_month: frozenset
    months: frozenset
    days_of_week: frozenset

    @classmethod
    def parse(cls, text: str) -> "CronExpression":
        """Parse a standard five-field cron expression.

        Supported syntax per field: ``*``, single values, comma lists,
        ranges (``1-5``) and step values (``*/6`` or ``2-10/2``).
        """
        fields = text.split()
        if len(fields) != 5:
            raise SchedulingError(
                f"cron expression must have 5 fields, got {len(fields)}: {text!r}"
            )
        parsed: List[frozenset] = []
        for value, (name, low, high) in zip(fields, _FIELD_RANGES):
            parsed.append(frozenset(cls._parse_field(value, name, low, high)))
        return cls(text, *parsed)

    @staticmethod
    def _parse_field(value: str, name: str, low: int, high: int) -> Set[int]:
        result: Set[int] = set()
        for part in value.split(","):
            part = part.strip()
            if not part:
                raise SchedulingError(f"empty component in cron field {name}")
            step = 1
            if "/" in part:
                part, step_text = part.split("/", 1)
                if not step_text.isdigit() or int(step_text) == 0:
                    raise SchedulingError(f"invalid step {step_text!r} in field {name}")
                step = int(step_text)
            if part == "*":
                start, end = low, high
            elif "-" in part:
                start_text, end_text = part.split("-", 1)
                if not (start_text.isdigit() and end_text.isdigit()):
                    raise SchedulingError(f"invalid range {part!r} in field {name}")
                start, end = int(start_text), int(end_text)
            elif part.isdigit():
                start = end = int(part)
            else:
                raise SchedulingError(f"invalid value {part!r} in cron field {name}")
            if start < low or end > high or start > end:
                raise SchedulingError(
                    f"cron field {name} value out of range [{low}, {high}]: {part!r}"
                )
            result.update(range(start, end + 1, step))
        return result

    def matches(self, timestamp: int) -> bool:
        """Return True if the expression fires at the given Unix timestamp."""
        minute, hour, day, month, weekday = _broken_down(timestamp)
        return (
            minute in self.minutes
            and hour in self.hours
            and day in self.days_of_month
            and month in self.months
            and weekday in self.days_of_week
        )

    def next_fire(self, after_timestamp: int, horizon_days: int = 366) -> int:
        """Return the first firing strictly after *after_timestamp*.

        Searches minute by minute up to *horizon_days*; raises if the
        expression never fires in that window (e.g. ``0 0 31 2 *``).
        """
        timestamp = (after_timestamp // 60 + 1) * 60
        limit = after_timestamp + horizon_days * 86400
        while timestamp <= limit:
            if self.matches(timestamp):
                return timestamp
            timestamp += 60
        raise SchedulingError(
            f"cron expression {self.text!r} does not fire within {horizon_days} days"
        )


def _broken_down(timestamp: int) -> Tuple[int, int, int, int, int]:
    """Return (minute, hour, day-of-month, month, day-of-week) for a timestamp."""
    days_since_epoch, seconds_in_day = divmod(int(timestamp), 86400)
    hour, remainder = divmod(seconds_in_day, 3600)
    minute = remainder // 60
    # 1 January 1970 was a Thursday; cron uses 0 = Sunday.
    weekday = (days_since_epoch + 4) % 7
    year, month, day = _civil(days_since_epoch)
    return minute, hour, day, month, weekday


def _civil(days: int) -> Tuple[int, int, int]:
    days += 719468
    era = (days if days >= 0 else days - 146096) // 146097
    day_of_era = days - era * 146097
    year_of_era = (
        day_of_era - day_of_era // 1460 + day_of_era // 36524 - day_of_era // 146096
    ) // 365
    year = year_of_era + era * 400
    day_of_year = day_of_era - (365 * year_of_era + year_of_era // 4 - year_of_era // 100)
    month_prime = (5 * day_of_year + 2) // 153
    day = day_of_year - (153 * month_prime + 2) // 5 + 1
    month = month_prime + 3 if month_prime < 10 else month_prime - 9
    year = year + (1 if month <= 2 else 0)
    return year, month, day


@dataclass
class CronJob:
    """A named cron job installed on a client machine."""

    name: str
    expression: CronExpression
    action: Callable[[int], object]
    enabled: bool = True
    fire_count: int = 0
    last_fired: Optional[int] = None

    def fire(self, timestamp: int) -> object:
        """Run the job's action at *timestamp*."""
        self.fire_count += 1
        self.last_fired = timestamp
        return self.action(timestamp)


class CronScheduler:
    """Evaluates the cron tables of a client against the simulated clock."""

    def __init__(self, clock: Optional[SimulatedClock] = None) -> None:
        self.clock = clock or SimulatedClock()
        self._jobs: Dict[str, CronJob] = {}

    def install(
        self, name: str, expression: str, action: Callable[[int], object]
    ) -> CronJob:
        """Install a cron job; duplicate names are rejected."""
        if name in self._jobs:
            raise SchedulingError(f"cron job {name!r} already installed")
        job = CronJob(name=name, expression=CronExpression.parse(expression), action=action)
        self._jobs[name] = job
        return job

    def remove(self, name: str) -> None:
        """Remove an installed job."""
        if name not in self._jobs:
            raise SchedulingError(f"no cron job named {name!r}")
        del self._jobs[name]

    def disable(self, name: str) -> None:
        """Disable a job without removing it."""
        self.job(name).enabled = False

    def enable(self, name: str) -> None:
        """Re-enable a disabled job."""
        self.job(name).enabled = True

    def job(self, name: str) -> CronJob:
        """Return the job called *name*."""
        try:
            return self._jobs[name]
        except KeyError:
            raise SchedulingError(f"no cron job named {name!r}") from None

    def jobs(self) -> List[CronJob]:
        """All installed jobs sorted by name."""
        return [self._jobs[name] for name in sorted(self._jobs)]

    def advance(self, seconds: int) -> List[Tuple[int, str, object]]:
        """Advance the clock and fire every job due in the window.

        Returns a list of ``(timestamp, job_name, action_result)`` tuples in
        firing order.  Jobs with the same firing minute run in name order,
        which keeps the whole simulation deterministic.
        """
        if seconds < 0:
            raise SchedulingError("cannot advance the scheduler backwards")
        start = self.clock.now
        end = self.clock.advance(seconds)
        fired: List[Tuple[int, str, object]] = []
        # Iterate over whole minutes inside (start, end].
        timestamp = (start // 60 + 1) * 60
        while timestamp <= end:
            for job in self.jobs():
                if job.enabled and job.expression.matches(timestamp):
                    fired.append((timestamp, job.name, job.fire(timestamp)))
            timestamp += 60
        return fired

    def advance_days(self, days: float) -> List[Tuple[int, str, object]]:
        """Advance by a number of days (convenience wrapper)."""
        return self.advance(int(days * 86400))


#: The nightly build schedule used by the sp-system examples (02:30 every day).
NIGHTLY_BUILD_SCHEDULE = "30 2 * * *"
#: Weekly full-chain validation (Sunday 04:00).
WEEKLY_VALIDATION_SCHEDULE = "0 4 * * 0"


__all__ = [
    "CronExpression",
    "CronJob",
    "CronScheduler",
    "NIGHTLY_BUILD_SCHEDULE",
    "WEEKLY_VALIDATION_SCHEDULE",
]
