"""Client machines of the sp-system.

"The sp-system is designed and constructed in such a way that new client
machines (as a virtual machine or a normal physical machine like a batch or
grid worker node) can easily be added.  The only requirement of a new machine
is to have access to the common sp-system storage ... as well as the ability
to run a cron-job on the client."

:class:`ClientMachine` captures those two requirements; the three concrete
flavours (virtual machine, batch worker, grid worker) differ only in their
resource profile and in how their environment is defined (a VM boots an
image, a physical node has whatever is installed on it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._common import ConfigurationError, ensure_identifier
from repro.environment.configuration import EnvironmentConfiguration
from repro.storage.common_storage import CommonStorage
from repro.virtualization.cron import CronScheduler
from repro.virtualization.image import VirtualMachineImage
from repro.virtualization.resources import (
    BATCH_WORKER_PROFILE,
    GRID_WORKER_PROFILE,
    ResourceAccountant,
    ResourceProfile,
    VALIDATION_VM_PROFILE,
)
from repro.storage.bookkeeping import SimulatedClock


class ClientKind(enum.Enum):
    """The kinds of machine that can join the sp-system."""

    VIRTUAL_MACHINE = "virtual-machine"
    BATCH_WORKER = "batch-worker"
    GRID_WORKER = "grid-worker"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ClientMachine:
    """A machine attached to the sp-system.

    A client is usable only when it satisfies the two documented
    requirements: it mounts the common storage and it can run cron jobs.
    """

    def __init__(
        self,
        name: str,
        kind: ClientKind,
        configuration: EnvironmentConfiguration,
        storage: Optional[CommonStorage] = None,
        clock: Optional[SimulatedClock] = None,
        profile: Optional[ResourceProfile] = None,
        cron_capable: bool = True,
    ) -> None:
        self.name = ensure_identifier(name, "client name")
        self.kind = kind
        self.configuration = configuration
        self.storage = storage
        self.clock = clock or SimulatedClock()
        self.cron_capable = cron_capable
        self.cron = CronScheduler(self.clock) if cron_capable else None
        default_profile = {
            ClientKind.VIRTUAL_MACHINE: VALIDATION_VM_PROFILE,
            ClientKind.BATCH_WORKER: BATCH_WORKER_PROFILE,
            ClientKind.GRID_WORKER: GRID_WORKER_PROFILE,
        }[kind]
        self.resources = ResourceAccountant(profile or default_profile)
        self.booted_image: Optional[VirtualMachineImage] = None

    @property
    def has_storage_access(self) -> bool:
        """True if the client mounts the common sp-system storage."""
        return self.storage is not None

    def attach_storage(self, storage: CommonStorage) -> None:
        """Mount the common storage on this client."""
        self.storage = storage

    def meets_requirements(self) -> bool:
        """Check the two requirements the paper states for new clients."""
        return self.has_storage_access and self.cron_capable

    def missing_requirements(self) -> List[str]:
        """Return which of the two client requirements are not met."""
        missing = []
        if not self.has_storage_access:
            missing.append("access to the common sp-system storage")
        if not self.cron_capable:
            missing.append("ability to run a cron-job")
        return missing

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable client description."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "configuration": self.configuration.describe(),
            "has_storage_access": self.has_storage_access,
            "cron_capable": self.cron_capable,
            "cpu_cores": self.resources.profile.cpu_cores,
            "memory_gb": self.resources.profile.memory_gb,
        }


class VirtualMachineClient(ClientMachine):
    """A client booted from a hypervisor-hosted virtual machine image."""

    def __init__(
        self,
        name: str,
        image: VirtualMachineImage,
        storage: Optional[CommonStorage] = None,
        clock: Optional[SimulatedClock] = None,
        profile: Optional[ResourceProfile] = None,
    ) -> None:
        if not image.is_usable:
            raise ConfigurationError(
                f"image {image.name!r} is in state {image.state.value} and cannot be booted"
            )
        super().__init__(
            name=name,
            kind=ClientKind.VIRTUAL_MACHINE,
            configuration=image.configuration,
            storage=storage,
            clock=clock,
            profile=profile,
        )
        self.booted_image = image


class BatchWorkerClient(ClientMachine):
    """A physical batch-farm worker node added as an sp-system client."""

    def __init__(
        self,
        name: str,
        configuration: EnvironmentConfiguration,
        storage: Optional[CommonStorage] = None,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        super().__init__(
            name=name,
            kind=ClientKind.BATCH_WORKER,
            configuration=configuration,
            storage=storage,
            clock=clock,
            profile=BATCH_WORKER_PROFILE,
        )


class GridWorkerClient(ClientMachine):
    """A grid worker node added as an sp-system client."""

    def __init__(
        self,
        name: str,
        configuration: EnvironmentConfiguration,
        storage: Optional[CommonStorage] = None,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        super().__init__(
            name=name,
            kind=ClientKind.GRID_WORKER,
            configuration=configuration,
            storage=storage,
            clock=clock,
            profile=GRID_WORKER_PROFILE,
        )


__all__ = [
    "ClientKind",
    "ClientMachine",
    "VirtualMachineClient",
    "BatchWorkerClient",
    "GridWorkerClient",
]
