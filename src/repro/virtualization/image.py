"""Virtual machine images built from environment configurations.

"Technically, this is realised using a framework capable of hosting a number
of virtual machine images, built with different configurations of operating
systems and the relevant software, including any necessary external
dependencies."  A :class:`VirtualMachineImage` is the simulated counterpart:
an immutable snapshot of an :class:`EnvironmentConfiguration` plus build
metadata, which the hypervisor can instantiate into running clients and which
can be conserved ("frozen") at the end of the preservation programme.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._common import ConfigurationError, stable_digest
from repro.environment.configuration import EnvironmentConfiguration


class ImageState(enum.Enum):
    """Lifecycle state of a virtual machine image."""

    BUILDING = "building"
    READY = "ready"
    DEPRECATED = "deprecated"
    CONSERVED = "conserved"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class VirtualMachineImage:
    """A bootable image with a fixed environment configuration.

    Attributes
    ----------
    name:
        Image name, normally derived from the configuration key.
    configuration:
        The environment baked into the image.
    built_at:
        Unix timestamp of the image build.
    state:
        Lifecycle state; only ``READY`` images can be instantiated.
    disk_gb:
        Size of the image on the hypervisor's store.
    notes:
        Free-form annotations (e.g. "conserved as last working H1 image").
    """

    name: str
    configuration: EnvironmentConfiguration
    built_at: int
    state: ImageState = ImageState.READY
    disk_gb: float = 20.0
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.disk_gb <= 0:
            raise ConfigurationError("image disk size must be positive")

    @property
    def image_id(self) -> str:
        """Deterministic identifier derived from name, configuration and build time."""
        return stable_digest(self.name, self.configuration.key, self.built_at)[:12]

    @property
    def is_usable(self) -> bool:
        """True when the image can be booted into a client."""
        return self.state in (ImageState.READY, ImageState.CONSERVED)

    def deprecate(self, reason: str) -> None:
        """Mark the image as deprecated (superseded by a newer configuration)."""
        if self.state is ImageState.CONSERVED:
            raise ConfigurationError("a conserved image cannot be deprecated")
        self.state = ImageState.DEPRECATED
        self.notes.append(f"deprecated: {reason}")

    def conserve(self, reason: str) -> None:
        """Conserve the image as the final frozen system (workflow phase iv)."""
        self.state = ImageState.CONSERVED
        self.notes.append(f"conserved: {reason}")

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable description stored in the image namespace."""
        return {
            "name": self.name,
            "image_id": self.image_id,
            "configuration": self.configuration.describe(),
            "built_at": self.built_at,
            "state": self.state.value,
            "disk_gb": self.disk_gb,
            "notes": list(self.notes),
        }


def image_name_for(configuration: EnvironmentConfiguration) -> str:
    """Conventional image name for a configuration (``vm-SL6_64bit_gcc4.4``)."""
    return f"vm-{configuration.key}"


__all__ = ["VirtualMachineImage", "ImageState", "image_name_for"]
