"""Resource accounting for sp-system client machines.

"Neither the hardware resources nor the interface are designed for mass
production or large-scale analysis."  The resource model keeps the simulated
clients honest about that constraint: each client has a small CPU/memory/disk
budget, jobs reserve and release slots, and the accounting records utilisation
so the reports can show that the system stays "very light".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._common import ConfigurationError, SchedulingError


@dataclass(frozen=True)
class ResourceProfile:
    """Hardware profile of a client machine."""

    cpu_cores: int
    memory_gb: float
    disk_gb: float

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0:
            raise ConfigurationError("a client needs at least one CPU core")
        if self.memory_gb <= 0 or self.disk_gb <= 0:
            raise ConfigurationError("memory and disk sizes must be positive")


#: Typical profiles: the validation VMs are small, batch/grid nodes larger.
VALIDATION_VM_PROFILE = ResourceProfile(cpu_cores=2, memory_gb=4.0, disk_gb=100.0)
BATCH_WORKER_PROFILE = ResourceProfile(cpu_cores=8, memory_gb=16.0, disk_gb=500.0)
GRID_WORKER_PROFILE = ResourceProfile(cpu_cores=16, memory_gb=32.0, disk_gb=1000.0)


@dataclass
class ResourceReservation:
    """An active reservation of client resources by a running job."""

    job_id: str
    cpu_cores: int
    memory_gb: float
    disk_gb: float


class ResourceAccountant:
    """Tracks reservations and cumulative usage on one client."""

    def __init__(self, profile: ResourceProfile) -> None:
        self.profile = profile
        self._reservations: Dict[str, ResourceReservation] = {}
        self.total_cpu_seconds: float = 0.0
        self.peak_concurrent_jobs: int = 0

    @property
    def used_cores(self) -> int:
        """CPU cores currently reserved."""
        return sum(reservation.cpu_cores for reservation in self._reservations.values())

    @property
    def used_memory_gb(self) -> float:
        """Memory currently reserved."""
        return sum(reservation.memory_gb for reservation in self._reservations.values())

    @property
    def used_disk_gb(self) -> float:
        """Disk currently reserved."""
        return sum(reservation.disk_gb for reservation in self._reservations.values())

    @property
    def free_cores(self) -> int:
        """CPU cores still available."""
        return self.profile.cpu_cores - self.used_cores

    def can_accommodate(self, cpu_cores: int, memory_gb: float, disk_gb: float) -> bool:
        """Return True if a job with the given demands fits right now."""
        return (
            cpu_cores <= self.free_cores
            and memory_gb <= self.profile.memory_gb - self.used_memory_gb
            and disk_gb <= self.profile.disk_gb - self.used_disk_gb
        )

    def reserve(
        self, job_id: str, cpu_cores: int = 1, memory_gb: float = 1.0, disk_gb: float = 5.0
    ) -> ResourceReservation:
        """Reserve resources for a job; raises when the client is full."""
        if job_id in self._reservations:
            raise SchedulingError(f"job {job_id!r} already holds a reservation")
        if cpu_cores <= 0:
            raise SchedulingError("a job must reserve at least one core")
        if not self.can_accommodate(cpu_cores, memory_gb, disk_gb):
            raise SchedulingError(
                f"client cannot accommodate job {job_id!r}: "
                f"{self.free_cores} cores free, {cpu_cores} requested"
            )
        reservation = ResourceReservation(job_id, cpu_cores, memory_gb, disk_gb)
        self._reservations[job_id] = reservation
        self.peak_concurrent_jobs = max(self.peak_concurrent_jobs, len(self._reservations))
        return reservation

    def release(self, job_id: str, cpu_seconds_used: float = 0.0) -> None:
        """Release a reservation and account the consumed CPU time."""
        if job_id not in self._reservations:
            raise SchedulingError(f"job {job_id!r} holds no reservation")
        if cpu_seconds_used < 0:
            raise SchedulingError("CPU seconds used cannot be negative")
        del self._reservations[job_id]
        self.total_cpu_seconds += cpu_seconds_used

    def active_jobs(self) -> List[str]:
        """IDs of jobs currently holding reservations."""
        return sorted(self._reservations)

    def utilisation(self) -> float:
        """Fraction of CPU cores currently in use."""
        return self.used_cores / self.profile.cpu_cores


__all__ = [
    "ResourceProfile",
    "ResourceReservation",
    "ResourceAccountant",
    "VALIDATION_VM_PROFILE",
    "BATCH_WORKER_PROFILE",
    "GRID_WORKER_PROFILE",
]
