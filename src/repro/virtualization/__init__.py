"""Virtualization substrate: images, hypervisor, clients and cron scheduling."""

from repro.virtualization.client import (
    BatchWorkerClient,
    ClientKind,
    ClientMachine,
    GridWorkerClient,
    VirtualMachineClient,
)
from repro.virtualization.cron import (
    CronExpression,
    CronJob,
    CronScheduler,
    NIGHTLY_BUILD_SCHEDULE,
    WEEKLY_VALIDATION_SCHEDULE,
)
from repro.virtualization.hypervisor import Hypervisor
from repro.virtualization.image import ImageState, VirtualMachineImage, image_name_for
from repro.virtualization.provisioning import ProvisioningReport, ProvisioningService
from repro.virtualization.resources import (
    BATCH_WORKER_PROFILE,
    GRID_WORKER_PROFILE,
    ResourceAccountant,
    ResourceProfile,
    ResourceReservation,
    VALIDATION_VM_PROFILE,
)

__all__ = [
    "BatchWorkerClient",
    "ClientKind",
    "ClientMachine",
    "GridWorkerClient",
    "VirtualMachineClient",
    "CronExpression",
    "CronJob",
    "CronScheduler",
    "NIGHTLY_BUILD_SCHEDULE",
    "WEEKLY_VALIDATION_SCHEDULE",
    "Hypervisor",
    "ImageState",
    "VirtualMachineImage",
    "image_name_for",
    "ProvisioningReport",
    "ProvisioningService",
    "BATCH_WORKER_PROFILE",
    "GRID_WORKER_PROFILE",
    "ResourceAccountant",
    "ResourceProfile",
    "ResourceReservation",
    "VALIDATION_VM_PROFILE",
]
