"""The hypervisor hosting the sp-system's virtual machine images.

The framework is "capable of hosting a number of virtual machine images".
The :class:`Hypervisor` keeps the image library, instantiates images into
:class:`VirtualMachineClient` instances, tracks which clients are running and
enforces a (generous) capacity limit — the sp-system is a validation facility,
not a production farm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro._common import ConfigurationError
from repro.environment.configuration import EnvironmentConfiguration
from repro.storage.bookkeeping import SimulatedClock
from repro.storage.common_storage import CommonStorage
from repro.virtualization.client import VirtualMachineClient
from repro.virtualization.image import ImageState, VirtualMachineImage, image_name_for


class Hypervisor:
    """Hosts virtual machine images and running clients."""

    def __init__(
        self,
        name: str = "sp-hypervisor",
        max_running_clients: int = 16,
        clock: Optional[SimulatedClock] = None,
        storage: Optional[CommonStorage] = None,
    ) -> None:
        if max_running_clients <= 0:
            raise ConfigurationError("the hypervisor must allow at least one client")
        self.name = name
        self.max_running_clients = max_running_clients
        self.clock = clock or SimulatedClock()
        self.storage = storage
        self._images: Dict[str, VirtualMachineImage] = {}
        self._running: Dict[str, VirtualMachineClient] = {}

    # -- image management -------------------------------------------------
    def build_image(
        self,
        configuration: EnvironmentConfiguration,
        name: Optional[str] = None,
        disk_gb: float = 20.0,
    ) -> VirtualMachineImage:
        """Build (register) an image for *configuration*."""
        image_name = name or image_name_for(configuration)
        if image_name in self._images:
            raise ConfigurationError(f"image {image_name!r} already exists")
        image = VirtualMachineImage(
            name=image_name,
            configuration=configuration,
            built_at=self.clock.now,
            state=ImageState.READY,
            disk_gb=disk_gb,
        )
        self._images[image_name] = image
        if self.storage is not None:
            self.storage.create_namespace("images")
            self.storage.put("images", image_name, image.describe())
        return image

    def image(self, name: str) -> VirtualMachineImage:
        """Return the image called *name*."""
        try:
            return self._images[name]
        except KeyError:
            known = ", ".join(sorted(self._images))
            raise ConfigurationError(f"unknown image {name!r} (known: {known})") from None

    def images(self) -> List[VirtualMachineImage]:
        """All hosted images sorted by name."""
        return [self._images[name] for name in sorted(self._images)]

    def usable_images(self) -> List[VirtualMachineImage]:
        """Images that can currently be booted."""
        return [image for image in self.images() if image.is_usable]

    def image_for_configuration(
        self, configuration: EnvironmentConfiguration
    ) -> Optional[VirtualMachineImage]:
        """Return the image matching *configuration*, if one exists."""
        for image in self.images():
            if image.configuration.key == configuration.key:
                return image
        return None

    def deprecate_image(self, name: str, reason: str) -> None:
        """Deprecate an image (e.g. its OS reached end of life)."""
        self.image(name).deprecate(reason)

    def conserve_image(self, name: str, reason: str) -> VirtualMachineImage:
        """Conserve an image as the final frozen system (workflow phase iv)."""
        image = self.image(name)
        image.conserve(reason)
        if self.storage is not None:
            self.storage.create_namespace("images")
            self.storage.put("images", image.name, image.describe())
        return image

    def conserved_images(self) -> List[VirtualMachineImage]:
        """All conserved (frozen) images."""
        return [image for image in self.images() if image.state is ImageState.CONSERVED]

    # -- client management -------------------------------------------------
    def start_client(
        self, image_name: str, client_name: Optional[str] = None
    ) -> VirtualMachineClient:
        """Boot a client from the named image."""
        if len(self._running) >= self.max_running_clients:
            raise ConfigurationError(
                f"hypervisor {self.name} is at capacity "
                f"({self.max_running_clients} running clients)"
            )
        image = self.image(image_name)
        name = client_name or f"{image_name}-client{len(self._running):02d}"
        if name in self._running:
            raise ConfigurationError(f"client {name!r} is already running")
        client = VirtualMachineClient(
            name=name, image=image, storage=self.storage, clock=self.clock
        )
        self._running[name] = client
        return client

    def stop_client(self, client_name: str) -> None:
        """Stop a running client."""
        if client_name not in self._running:
            raise ConfigurationError(f"no running client named {client_name!r}")
        del self._running[client_name]

    def running_clients(self) -> List[VirtualMachineClient]:
        """All running clients sorted by name."""
        return [self._running[name] for name in sorted(self._running)]

    def client(self, name: str) -> VirtualMachineClient:
        """Return the running client called *name*."""
        try:
            return self._running[name]
        except KeyError:
            raise ConfigurationError(f"no running client named {name!r}") from None

    def capacity_remaining(self) -> int:
        """How many more clients can be started."""
        return self.max_running_clients - len(self._running)

    def total_image_disk_gb(self) -> float:
        """Disk consumed by the hosted image library."""
        return sum(image.disk_gb for image in self.images())


__all__ = ["Hypervisor"]
