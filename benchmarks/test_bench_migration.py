"""Section 3.3 — bookkeeping, reproducibility and the SL6 / SL7 / ROOT 6 migrations.

The text of section 3.3 makes three quantitative/behavioural claims that this
benchmark reproduces:

* every test job gets a unique ID, a description tag and a timestamp, and all
  outputs are kept so that "the validation of all versions against each other"
  is possible and previous results are reproducible;
* the SL6/64bit migration exposed problems ("identified and helped to solve
  several long-standing bugs") which the framework attributes to the changed
  environment and routes to the responsible party;
* "the next challenges include the testing of the SL7 environment and checking
  the compatibility of the experiments software with ROOT 6" — probed here by
  validating against the SL7 + ROOT 6 configuration and planning the migration.
"""

import pytest

from repro.core.spsystem import SPSystem
from repro.environment.configuration import next_generation_configuration
from repro.migration.planner import MigrationPlanner

from conftest import emit


def run_migration_campaign(experiments):
    """Baseline on SL5, migrate to SL6, re-validate, then probe SL7 + ROOT 6."""
    system = SPSystem()
    system.provision_standard_images()
    sl7 = next_generation_configuration()
    system.add_configuration(sl7)
    h1 = experiments[1]
    system.register_experiment(h1)

    baseline = system.validate("H1", "SL5_64bit_gcc4.4", description="SL5 reference")
    repeat = system.validate("H1", "SL5_64bit_gcc4.4", description="SL5 reference repeat")
    sl6 = system.validate("H1", "SL6_64bit_gcc4.4", description="SL6 migration")
    sl7_probe = system.validate("H1", sl7.key, description="SL7 + ROOT6 challenge")
    plan = MigrationPlanner().plan(
        h1, system.configuration("SL5_64bit_gcc4.4"), sl7
    )
    return system, baseline, repeat, sl6, sl7_probe, plan


def test_migration_bookkeeping_and_next_challenges(benchmark, hera_experiments_small):
    system, baseline, repeat, sl6, sl7_probe, plan = benchmark.pedantic(
        run_migration_campaign, args=(hera_experiments_small,), rounds=1, iterations=1
    )

    # Unique IDs and tags: no collisions between any of the recorded jobs.
    all_ids = [job.job_id for run in (baseline.run, repeat.run, sl6.run, sl7_probe.run)
               for job in run.jobs]
    assert len(all_ids) == len(set(all_ids))
    assert system.tag_registry.runs_for("SL5 reference") == [baseline.run.run_id]

    # Reproducibility: repeating the run on the same configuration gives the
    # same outcome for every test, and no regressions against the reference.
    assert baseline.successful and repeat.successful
    assert repeat.run.statuses_by_test() == baseline.run.statuses_by_test()
    assert not repeat.regression_report.has_regressions

    # The SL6 migration surfaces problems attributed to the changed environment.
    assert not sl6.successful
    assert sl6.regression_report.has_regressions
    sl6_categories = sl6.diagnosis.by_category()
    assert set(sl6_categories) & {"operating_system", "compiler"}
    assert sl6.tickets

    # The SL7 + ROOT 6 probe fails more broadly (the "next challenge").
    assert not sl7_probe.successful
    assert sl7_probe.run.n_failed >= sl6.run.n_failed
    sl7_categories = sl7_probe.diagnosis.by_category()
    assert "external_dependency" in sl7_categories or "compiler" in sl7_categories
    assert not plan.is_trivial

    rows = [
        {
            "validation run": result.run.description,
            "configuration": result.run.configuration_key,
            "tests passed": f"{result.run.n_passed}/{result.run.n_jobs}",
            "regressions vs last good": result.regression_report.n_regressions,
            "tickets opened": len(result.tickets),
            "dominant diagnosis": (
                result.diagnosis.dominant_category().value if result.diagnosis else "-"
            ),
        }
        for result in (baseline, repeat, sl6, sl7_probe)
    ]
    rows.append(
        {
            "validation run": "SL5 -> SL7/ROOT6 migration plan",
            "configuration": plan.target_configuration,
            "tests passed": f"predicted pass fraction {plan.predicted_pass_fraction:.2f}",
            "regressions vs last good": len(plan.items),
            "tickets opened": "-",
            "dominant diagnosis": f"effort {plan.total_effort_person_weeks:.1f} person-weeks",
        }
    )
    emit(
        "Section3.3-migration",
        "Bookkeeping, reproducibility and the SL6 / SL7+ROOT6 migration probes",
        rows,
        notes=(
            "The SL6 column shows the migration the HERA experiments were "
            "performing at the time of the paper; SL7 + ROOT 6 is the stated "
            "next challenge."
        ),
    )
