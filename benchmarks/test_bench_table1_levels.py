"""Table 1 — DPHEP data preservation levels.

Regenerates the four rows of Table 1 (level, preservation model, use case)
from the :mod:`repro.core.levels` model and checks their content against the
paper.
"""

from repro.core.levels import (
    PreservationLevel,
    preservation_table,
    required_capabilities,
)

from conftest import emit


def test_table1_preservation_levels(benchmark):
    table = benchmark(preservation_table)

    assert len(table) == 4
    assert table[0]["preservation_model"] == "Provide additional documentation"
    assert table[1]["use_case"] == "Outreach, simple training analyses"
    assert "analysis level software" in table[2]["preservation_model"]
    assert table[3]["use_case"] == "Retain the full potential of the experimental data"

    rows = [
        {
            "level": row["level"],
            "preservation_model": row["preservation_model"],
            "use_case": row["use_case"],
            "capabilities_kept_alive": ", ".join(
                required_capabilities(PreservationLevel(row["level"]))
            ) or "(documentation only)",
        }
        for row in table
    ]
    emit(
        "Table1",
        "Data preservation levels as defined by the DPHEP Collaboration",
        rows,
        notes=(
            "Levels 1-2 cover documentation and outreach; levels 3-4 are the "
            "technical preservation projects the sp-system supports."
        ),
    )
