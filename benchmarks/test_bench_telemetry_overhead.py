"""Telemetry overhead — a fully instrumented campaign vs a bare one.

The telemetry subsystem promises to observe without participating: the
science must stay bit-identical (pinned by ``TestBackendParity``) and the
wall-clock cost of full instrumentation — every hot-path span plus the
``MetricsObserver`` folding lifecycle events into the registry — must stay
within a bounded factor of an uninstrumented run.  This benchmark measures
that factor on a 100-cell campaign and also times the fingerprint
memoisation satellite (cold vs memoised ``configuration_fingerprint``).

Both results, along with the headline campaign metrics (cells/sec, cache
hit rate, journal bytes, ledger µs/event), are appended to the trend
series under ``benchmarks/_results/trends/`` that the
``repro bench-trends check`` CI gate compares against the trailing median.
"""

import time

from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.environment.configuration import (
    _configuration_fingerprint,
    configuration_fingerprint,
    sp_system_configurations,
)
from repro.experiments import build_hermes_experiment
from repro.scheduler.spec import CampaignSpec
from repro.telemetry import MetricsObserver, Telemetry, record_trend

from conftest import emit

ROUNDS = 20  # x 5 standard configurations = 100 matrix cells
REPEATS = 3  # best-of; absorbs scheduler noise on a loaded CI box
#: Maximum tolerated instrumented/bare wall-time ratio.  Generous on
#: purpose: the bare run takes well under a second at this scale, so tiny
#: absolute deltas inflate the ratio.
MAX_OVERHEAD_FACTOR = 2.0


def _run_campaign(telemetry):
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0),
        telemetry=telemetry,
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.05))
    if telemetry is not None:
        system.lifecycle.add_observer(MetricsObserver(telemetry.metrics))
    spec = CampaignSpec(
        workers=4, rounds=ROUNDS, record_history=True, persist_spec=False
    )
    start = time.perf_counter()
    campaign = system.submit(spec).result()
    wall = time.perf_counter() - start
    system.persist_build_cache()
    return system, campaign, wall


def _science(system, campaign):
    return {
        "runs": [run.to_document() for run in campaign.runs()],
        "catalog": [record.to_dict() for record in system.catalog.all()],
        "cache": campaign.cache_statistics,
    }


def _best_of(telemetry_factory):
    best = None
    for _ in range(REPEATS):
        system, campaign, wall = _run_campaign(telemetry_factory())
        if best is None or wall < best[2]:
            best = (system, campaign, wall)
    return best


def _memoisation_delta():
    """Cold vs memoised configuration_fingerprint, microseconds per call.

    Best-of-``REPEATS`` minima: single-digit-microsecond loops jitter far
    more than the 25% trend threshold on a loaded box, the minimum is the
    stable statistic.
    """
    configurations = sp_system_configurations()
    calls = 500

    def _loop(fingerprint):
        best = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            for _ in range(calls):
                for configuration in configurations:
                    fingerprint(configuration)
            elapsed = (time.perf_counter() - start) / (calls * len(configurations))
            best = elapsed if best is None else min(best, elapsed)
        return best * 1e6

    cold = _loop(_configuration_fingerprint)
    configuration_fingerprint(configurations[0])  # prime the memo
    memoised = _loop(configuration_fingerprint)
    return cold, memoised


def test_telemetry_overhead_100_cells(benchmark):
    bare_system, bare_campaign, bare_wall = _best_of(lambda: None)

    holder = {}

    def _instrumented():
        holder["result"] = _best_of(Telemetry.create)
        return holder["result"]

    benchmark.pedantic(_instrumented, rounds=1, iterations=1)
    system, campaign, wall = holder["result"]
    telemetry = system.telemetry

    assert campaign.n_cells == 5 * ROUNDS
    assert _science(system, campaign) == _science(bare_system, bare_campaign), (
        "instrumentation changed the science"
    )

    factor = wall / bare_wall
    assert factor <= MAX_OVERHEAD_FACTOR, (
        f"instrumented campaign took {factor:.2f}x the bare wall time "
        f"(limit {MAX_OVERHEAD_FACTOR}x)"
    )

    metrics = telemetry.metrics
    cells_per_second = campaign.n_cells / wall
    hits = metrics.counter_value("cache_hits_total")
    misses = metrics.counter_value("cache_misses_total")
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    journal_bytes = metrics.gauge_value("journal_bytes") or 0.0
    ledger_events = metrics.counter_value("ledger_events_total")
    ledger_seconds = sum(
        span.duration for span in telemetry.tracer.spans
        if span.name == "ledger_ingest"
    )
    ledger_us_per_event = (
        ledger_seconds / ledger_events * 1e6 if ledger_events else 0.0
    )
    cold_us, memoised_us = _memoisation_delta()

    context = {"cells": campaign.n_cells, "rounds": ROUNDS}
    record_trend(
        "telemetry_overhead_factor", round(factor, 4), "lower_is_better",
        unit="x", context=context,
    )
    record_trend(
        "campaign_cells_per_second", round(cells_per_second, 2),
        "higher_is_better", unit="cells/s", context=context,
    )
    record_trend(
        "build_cache_hit_rate", round(hit_rate, 4), "higher_is_better",
        unit="ratio", context=context,
    )
    record_trend(
        "journal_bytes", journal_bytes, "lower_is_better",
        unit="bytes", context=context,
    )
    record_trend(
        "ledger_us_per_event", round(ledger_us_per_event, 3),
        "lower_is_better", unit="us", context=context,
    )
    record_trend(
        "fingerprint_memoised_us", round(memoised_us, 4), "lower_is_better",
        unit="us", context={"cold_us": round(cold_us, 4)},
    )

    emit(
        "Telemetry-overhead",
        f"100-cell campaign ({ROUNDS} rounds x 5 configurations), "
        "fully instrumented vs bare",
        [
            {
                "variant": "bare",
                "wall_seconds": f"{bare_wall:.3f}",
                "cells_per_second": f"{bare_campaign.n_cells / bare_wall:.1f}",
                "spans": 0,
                "metric_series": 0,
            },
            {
                "variant": "instrumented",
                "wall_seconds": f"{wall:.3f}",
                "cells_per_second": f"{cells_per_second:.1f}",
                "spans": len(telemetry.tracer.spans),
                "metric_series": len(metrics.summary_rows()),
            },
            {
                "variant": "overhead",
                "wall_seconds": f"{factor:.2f}x",
                "cells_per_second": "-",
                "spans": "-",
                "metric_series": "-",
            },
        ],
        notes=(
            "science (run documents, catalogue, cache statistics) is "
            "bit-identical between the two variants; "
            f"cache hit rate {hit_rate:.2%}, journal {journal_bytes:.0f} "
            f"bytes, ledger ingest {ledger_us_per_event:.1f} us/event; "
            f"configuration_fingerprint {cold_us:.1f} us cold vs "
            f"{memoised_us:.2f} us memoised; all six series appended to "
            "benchmarks/_results/trends/ for the bench-trends CI gate"
        ),
    )
