"""Ablation B — the value of separating the three inputs for failure diagnosis.

Figure 1 of the paper emphasises "the clear separation of the inputs:
experiment specific software, external dependencies and operating system".
That separation is what lets a failed validation be attributed to the right
party ("Intervention is then required either by the host of the validation
suite or the experiment themselves, depending on the nature of the reported
problem").

This ablation injects faults of known origin — an OS/ABI incompatibility, a
removed external interface, and a genuine experiment software defect — and
measures how often the diagnosis engine attributes the resulting failures to
the correct input, with and without the environment-difference evidence that
the input separation provides.
"""

from dataclasses import replace

import pytest

from repro.core.diagnosis import FailureDiagnosisEngine
from repro.core.runner import ValidationRunner
from repro.environment.compatibility import IssueCategory
from repro.environment.configuration import next_generation_configuration
from repro.experiments.hermes import build_hermes_experiment
from repro.experiments.inventories import InventoryQuirks
from repro.hepdata.numerics import NumericContext

from conftest import emit


def _accuracy(report, expected_category, relevant_prefixes=None):
    """Fraction of diagnosed failures attributed to the expected category."""
    diagnoses = report.diagnoses
    if relevant_prefixes is not None:
        diagnoses = [
            diagnosis for diagnosis in diagnoses
            if diagnosis.test_name.startswith(relevant_prefixes)
        ]
    if not diagnoses:
        return 0.0, 0
    correct = sum(
        1 for diagnosis in diagnoses if diagnosis.category is expected_category
    )
    return correct / len(diagnoses), len(diagnoses)


def run_fault_injection():
    """Inject three fault classes and diagnose the resulting failures."""
    engine = FailureDiagnosisEngine()
    results = []

    # --- Fault 1: operating system / ABI change (un-ported packages on SL6).
    experiment = build_hermes_experiment(
        scale=0.4,
        quirks=InventoryQuirks(n_not_ported_to_newest_abi=3, n_legacy_root_api=0,
                               n_strictness_limited=0),
    )
    runner = ValidationRunner()
    sl5 = next(
        configuration for configuration in _standard_configurations()
        if configuration.key == "SL5_64bit_gcc4.4"
    )
    sl6 = next(
        configuration for configuration in _standard_configurations()
        if configuration.key == "SL6_64bit_gcc4.4"
    )
    runner.run(experiment, sl5)
    failing = runner.run(experiment, sl6)
    with_separation = engine.diagnose_run(
        failing, reference_configuration=sl5, current_configuration=sl6
    )
    without_separation = engine.diagnose_run(failing)
    accuracy_with, n_with = _accuracy(with_separation, IssueCategory.OPERATING_SYSTEM)
    accuracy_without, _ = _accuracy(without_separation, IssueCategory.OPERATING_SYSTEM)
    results.append(("operating system (SL5 -> SL6 ABI)", accuracy_with, accuracy_without, n_with))

    # --- Fault 2: external dependency change (ROOT 6 removes legacy interfaces).
    experiment2 = build_hermes_experiment(
        scale=0.4,
        quirks=InventoryQuirks(n_not_ported_to_newest_abi=0, n_legacy_root_api=3,
                               n_strictness_limited=0),
    )
    runner2 = ValidationRunner()
    sl7 = next_generation_configuration()
    runner2.run(experiment2, sl6)
    failing2 = runner2.run(experiment2, sl7)
    with_separation2 = engine.diagnose_run(
        failing2, reference_configuration=sl6, current_configuration=sl7
    )
    without_separation2 = engine.diagnose_run(failing2)
    accuracy_with2, n_with2 = _accuracy(
        with_separation2, IssueCategory.EXTERNAL_DEPENDENCY, ("compile-", "rootio-")
    )
    accuracy_without2, _ = _accuracy(
        without_separation2, IssueCategory.EXTERNAL_DEPENDENCY, ("compile-", "rootio-")
    )
    results.append(("external dependency (ROOT 5 -> 6)", accuracy_with2, accuracy_without2, n_with2))

    # --- Fault 3: experiment software defect (same environment, buggy build).
    experiment3 = build_hermes_experiment(scale=0.4)
    runner3 = ValidationRunner(
        numeric_context_factory=lambda configuration: NumericContext(
            label=configuration.key,
            defects=(("uninitialised-memory", 0.4),),
        )
    )
    failing3 = runner3.run(experiment3, sl5)
    report3 = engine.diagnose_run(
        failing3, reference_configuration=sl5, current_configuration=sl5
    )
    accuracy3, n3 = _accuracy(report3, IssueCategory.EXPERIMENT_SOFTWARE)
    results.append(("experiment software defect", accuracy3, accuracy3, n3))

    return results


def _standard_configurations():
    from repro.environment.configuration import sp_system_configurations

    return sp_system_configurations()


def test_ablation_diagnosis_attribution(benchmark):
    results = benchmark.pedantic(run_fault_injection, rounds=1, iterations=1)

    by_fault = {name: (with_sep, without_sep, n) for name, with_sep, without_sep, n in results}

    # With the separated-input evidence the attribution is reliable.
    assert by_fault["operating system (SL5 -> SL6 ABI)"][0] >= 0.8
    assert by_fault["external dependency (ROOT 5 -> 6)"][0] >= 0.8
    assert by_fault["experiment software defect"][0] >= 0.6
    # The environment-difference evidence never hurts and usually helps.
    for name, (with_sep, without_sep, _n) in by_fault.items():
        assert with_sep >= without_sep - 1e-9
    # Every fault class actually produced failures to diagnose.
    assert all(n > 0 for _with, _without, n in by_fault.values())

    emit(
        "AblationB-diagnosis",
        "Failure-attribution accuracy with and without the input separation",
        [
            {
                "injected fault": name,
                "diagnosed failures": n,
                "correct attribution (with separation)": f"{with_sep:.0%}",
                "correct attribution (issues only)": f"{without_sep:.0%}",
            }
            for name, with_sep, without_sep, n in results
        ],
        notes=(
            "'with separation' uses the configuration difference between the "
            "failing run and its reference as evidence, which the explicit "
            "separation of the three inputs makes available."
        ),
    )
