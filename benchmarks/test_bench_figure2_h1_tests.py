"""Figure 2 — outline of the validation tests prepared by the H1 experiment.

Figure 2 of the paper describes the structure of the H1 level-4 test suite:
the compilation of approximately 100 individual software packages, a series
of standalone validation tests run in parallel, and several sequential full
analysis chains running from MC generation and simulation through multi-level
file production to a full physics analysis — up to 500 tests in total.  The
benchmark regenerates that outline from the full-size synthetic H1 definition.
"""

from collections import Counter

import pytest

from repro.core.testspec import TestKind
from repro.experiments.h1 import build_h1_experiment

from conftest import emit


def test_figure2_h1_test_outline(benchmark):
    h1 = benchmark.pedantic(build_h1_experiment, rounds=1, iterations=1)

    # "approximately 100 individual H1 software packages"
    assert 95 <= len(h1.inventory) <= 105
    # "expected to comprise of up to 500 tests in total"
    assert 400 <= h1.total_test_count() <= 500
    # Full level-4 chains for every physics process, each running from MC
    # generation to the validation of the physics result.
    assert len(h1.chains) == 4
    for chain in h1.chains:
        names = chain.step_names()
        assert names[0].endswith("mc-generation")
        assert any(name.endswith("detector-simulation") for name in names)
        assert any(name.endswith("physics-analysis") for name in names)
        assert names[-1].endswith("result-validation")

    standalone_by_process = Counter(test.process for test in h1.standalone_tests)
    rows = [
        {
            "test group": "compilation of individual H1 software packages",
            "kind": TestKind.COMPILATION.value,
            "execution": "parallel (dependency levels)",
            "count": h1.compilation_test_count(),
        },
        {
            "test group": "standalone validation tests "
                          f"({len(standalone_by_process)} process groups)",
            "kind": TestKind.STANDALONE.value,
            "execution": "parallel",
            "count": len(h1.standalone_tests),
        },
    ]
    for chain in h1.chains:
        step_sequence = " -> ".join(
            step.description.split(" step")[0] for step in chain.steps
        )
        rows.append(
            {
                "test group": f"analysis chain: {chain.name}",
                "kind": TestKind.CHAIN_STEP.value,
                "execution": f"sequential ({step_sequence})",
                "count": len(chain),
            }
        )
    rows.append(
        {
            "test group": "TOTAL (paper expectation: up to 500)",
            "kind": "-",
            "execution": "-",
            "count": h1.total_test_count(),
        }
    )
    emit(
        "Figure2",
        "Outline of the validation tests prepared by the H1 experiment (level 4)",
        rows,
        notes=(
            "Compilation of ~100 packages plus standalone tests run in parallel "
            "and sequential full analysis chains, up to ~500 tests in total."
        ),
    )
