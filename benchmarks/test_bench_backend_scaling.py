"""Backend scaling — threads vs processes vs sharded on a 1000-cell campaign.

The execution backends promise that the campaign's wall-clock story is the
only thing they change: a 1000-cell synthetic campaign (5 configurations x
200 rounds of a scaled-down HERMES) must produce run documents, history
ledger events and cache statistics bit-identical to the simulated backend
— whether the DAG is dispatched on OS threads, bridged task-by-task to a
process pool, or partitioned cell-wise into shards whose private journals
are merged back into the parent cache.  The recorded artefact is the
cells-vs-wall-seconds table for the three real execution strategies next
to the simulated baseline.
"""

import time

from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.experiments import build_hermes_experiment
from repro.scheduler.spec import CampaignSpec

from conftest import emit

ROUNDS = 200  # x 5 standard configurations = 1000 matrix cells
SHARDS = 4


def _fresh_system():
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.05))
    return system


def _spec(backend):
    return CampaignSpec(
        workers=SHARDS,
        rounds=ROUNDS,
        backend=backend,
        shards=SHARDS if backend == "sharded" else None,
        record_history=True,
        persist_spec=False,
    )


def _run(backend):
    system = _fresh_system()
    start = time.perf_counter()
    campaign = system.submit(_spec(backend)).result()
    wall = time.perf_counter() - start
    return system, campaign, wall


def _science(system, campaign):
    """Everything that must be backend-invariant, in comparable form."""
    return {
        "runs": [run.to_document() for run in campaign.runs()],
        "catalog": [record.to_dict() for record in system.catalog.all()],
        "cache": campaign.cache_statistics,
        # The ledger records which backend executed; everything else in an
        # event is science and must match.
        "events": [
            {
                key: value
                for key, value in event.to_dict().items()
                if key != "backend"
            }
            for event in system.history.events()
        ],
    }


def test_backend_scaling_1000_cells(benchmark):
    results = {}
    for backend in ("simulated", "threads", "processes"):
        results[backend] = _run(backend)
    sharded_holder = {}

    def _sharded():
        sharded_holder["result"] = _run("sharded")
        return sharded_holder["result"]

    benchmark.pedantic(_sharded, rounds=1, iterations=1)
    results["sharded"] = sharded_holder["result"]

    reference_system, reference_campaign, _ = results["simulated"]
    assert reference_campaign.n_cells == 5 * ROUNDS
    reference = _science(reference_system, reference_campaign)
    for backend in ("threads", "processes", "sharded"):
        system, campaign, _wall = results[backend]
        assert _science(system, campaign) == reference, (
            f"the {backend} backend diverged from the simulated science"
        )
        assert campaign.schedule.backend == backend

    _, sharded_campaign, _ = results["sharded"]
    assert sharded_campaign.schedule.shards == SHARDS
    assert sharded_campaign.schedule.n_workers == SHARDS
    # Rounds >= 2 replay round one's builds from the cache.
    assert reference_campaign.cache_statistics.hit_rate > 0

    def _row(backend):
        _system, campaign, wall = results[backend]
        schedule = campaign.schedule
        return {
            "backend": backend,
            "cells": campaign.n_cells,
            "tasks": len(campaign.dag),
            "wall_seconds": f"{wall:.3f}",
            "cells_per_second": f"{campaign.n_cells / wall:.1f}",
            "slots": schedule.total_slots,
            "shards": schedule.shards or "-",
        }

    emit(
        "Backend-scaling",
        f"1000-cell campaign (5 configurations x {ROUNDS} rounds): "
        "simulated vs threads vs processes vs sharded",
        [_row(backend) for backend in ("simulated", "threads", "processes", "sharded")],
        notes=(
            "run documents, catalogue records, history events (modulo the "
            "recorded backend name) and cache statistics are bit-identical "
            "across all four backends; the sharded run partitioned "
            f"{sharded_campaign.n_cells} cells over {SHARDS} shard "
            "processes and merged their build-cache journals back into the "
            "parent cache"
        ),
    )
