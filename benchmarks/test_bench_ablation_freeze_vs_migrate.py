"""Ablation A — freeze versus active migration (section 2 of the paper).

The paper argues that freezing the environment "will provide a workable
solution for the medium-term future, [but] the operability of the software
and correctness of the results are not guaranteed", whereas actively adapting
and validating the software "substantially extend[s] the lifetime of the
software, and hence the data".  This ablation quantifies that claim on the
synthetic H1-like inventory: both strategies are run over the simulated
2012-2024 environment evolution and the usable lifetime and porting effort
are compared.

Expected shape: the frozen system stops being operable once its OS loses
security support (a handful of years), while the actively migrated system
stays fully usable for the whole period at a modest, spread-out porting cost.
"""

import pytest

from repro.environment.configuration import EnvironmentFactory
from repro.experiments.inventories import InventoryQuirks, build_inventory
from repro.migration.lifetime import LifetimeSimulator
from repro.migration.strategies import ActiveMigrationStrategy, FreezeStrategy


START_YEAR = 2012
END_YEAR = 2024


def build_inputs():
    """The inventory to preserve and the configuration it was frozen on."""
    inventory = build_inventory(
        "H1LIKE", 60,
        quirks=InventoryQuirks(
            n_not_ported_to_newest_abi=3,
            n_legacy_root_api=3,
            n_strictness_limited=3,
        ),
    )
    frozen_configuration = EnvironmentFactory().create(
        "SL5", 64, "gcc4.4",
        {"ROOT": "5.34", "CERNLIB": "2006", "GEANT3": "3.21", "MCGEN": "1.4", "MySQL": "5.5"},
    )
    return inventory, frozen_configuration


def run_comparison():
    inventory, frozen_configuration = build_inputs()
    simulator = LifetimeSimulator()
    return simulator.compare(
        [FreezeStrategy(frozen_configuration), ActiveMigrationStrategy()],
        inventory,
        start_year=START_YEAR,
        end_year=END_YEAR,
    )


def test_ablation_freeze_vs_active_migration(benchmark):
    comparison = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    freeze = comparison.result("freeze")
    migrate = comparison.result("active-migration")

    # Shape of the paper's argument: migration wins on lifetime, freezing on effort.
    assert migrate.usable_years > freeze.usable_years
    assert comparison.lifetime_extension_years() >= 3
    assert freeze.total_effort_person_weeks == 0.0
    assert migrate.total_effort_person_weeks > 0.0
    # The actively migrated stack is usable for (essentially) the whole period.
    assert migrate.usable_years >= (END_YEAR - START_YEAR)
    # The frozen stack dies when SL5 security support ends (2017 in the model).
    assert freeze.lifetime_years <= 2018 - START_YEAR

    from conftest import emit

    emit(
        "AblationA-lifetime",
        "Usable software lifetime: freeze vs active migration (2012-2024)",
        comparison.rows(),
        notes=(
            "usable_fraction is the fraction of packages that still build on the "
            "strategy's platform of that year; security_supported reflects OS "
            "support; effort is the simulated porting cost in person-weeks."
        ),
    )
    emit(
        "AblationA-summary",
        "Summary of the freeze vs migration ablation",
        [
            {
                "strategy": name,
                "usable years (of 13)": result.usable_years,
                "lifetime until first failure": result.lifetime_years,
                "total effort (person-weeks)": round(result.total_effort_person_weeks, 1),
            }
            for name, result in comparison.results.items()
        ],
    )
