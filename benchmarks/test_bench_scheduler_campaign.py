"""Smoke benchmark — sequential vs pooled campaign scheduling with build cache.

The campaign scheduler promises two things: the simulated worker pool
compresses the campaign makespan without changing a single output document,
and the content-hash build cache compiles identical package builds once per
campaign instead of once per cell.  This benchmark runs the same
two-round, multi-configuration HERMES campaign four ways — cell-by-cell
sequential, scheduled with one worker, scheduled with four workers, and
scheduled with four workers on a *fresh* installation warm-started from the
persisted build cache — and records real wall time, simulated makespan and
the cache hit rate.  The warm row quantifies what cross-campaign cache
persistence buys a restarted installation.
"""

import time

import pytest

from repro.core.spsystem import SPSystem
from repro.core.runner import RunnerSettings
from repro.experiments import (
    build_hermes_experiment,
    build_zeus_experiment,
    shared_external_packages,
)
from repro.scheduler.spec import CampaignSpec

from conftest import emit

CONFIGURATIONS = ["SL5_64bit_gcc4.4", "SL5_64bit_gcc4.1", "SL6_64bit_gcc4.4"]
ROUNDS = 2


def _fresh_system():
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.25))
    return system


def _sequential_campaign():
    system = _fresh_system()
    results = [
        system.validate("HERMES", key)
        for _round in range(ROUNDS)
        for key in CONFIGURATIONS
    ]
    return system, results


def _scheduled_campaign(workers):
    system = _fresh_system()
    campaign = system.run_campaign(
        ["HERMES"], CONFIGURATIONS, workers=workers, rounds=ROUNDS
    )
    return system, campaign


def _warm_campaign(cold_system):
    """A fresh installation warm-started from the persisted build cache."""
    cold_system.persist_build_cache()
    system = _fresh_system()
    system.restore_build_cache(cold_system.storage)
    campaign = system.run_campaign(
        ["HERMES"], CONFIGURATIONS, workers=4, rounds=ROUNDS
    )
    return system, campaign


def test_scheduler_campaign_smoke(benchmark):
    start = time.perf_counter()
    _, sequential_results = _sequential_campaign()
    sequential_wall = time.perf_counter() - start

    start = time.perf_counter()
    _, single = _scheduled_campaign(workers=1)
    single_wall = time.perf_counter() - start

    start = time.perf_counter()
    scheduled_system, pooled = benchmark.pedantic(
        _scheduled_campaign, args=(4,), rounds=1, iterations=1
    )
    pooled_wall = time.perf_counter() - start

    start = time.perf_counter()
    _, warm = _warm_campaign(scheduled_system)
    warm_wall = time.perf_counter() - start

    # Identical scientific output, whatever the execution strategy.
    sequential_documents = [cycle.run.to_document() for cycle in sequential_results]
    assert [run.to_document() for run in single.runs()] == sequential_documents
    assert [run.to_document() for run in pooled.runs()] == sequential_documents
    assert [run.to_document() for run in warm.runs()] == sequential_documents

    # The warm installation compiled nothing at all.
    assert warm.cache_statistics.misses == 0
    assert warm.cache_statistics.hit_rate == 1.0

    # The build cache must fire on a multi-configuration campaign: round two
    # replays every build of round one.
    assert pooled.cache_statistics.hit_rate > 0
    assert pooled.cache_statistics.hits == pooled.cache_statistics.misses

    # The pool compresses the simulated makespan.
    assert (
        pooled.schedule.makespan_seconds < pooled.schedule.sequential_seconds
    )
    assert pooled.schedule.speedup > 1.0

    emit(
        "Scheduler-campaign",
        "Sequential vs pooled validation campaign (2 rounds x 3 configurations)",
        [
            {
                "strategy": "sequential validate() loop",
                "wall_seconds": f"{sequential_wall:.3f}",
                "simulated_seconds": f"{pooled.schedule.sequential_seconds:.0f}",
                "cache_hit_rate": "-",
                "speedup": "1.00x",
            },
            {
                "strategy": "scheduler, 1 worker",
                "wall_seconds": f"{single_wall:.3f}",
                "simulated_seconds": f"{single.schedule.makespan_seconds:.0f}",
                "cache_hit_rate": f"{single.cache_statistics.hit_rate:.1%}",
                "speedup": f"{single.schedule.speedup:.2f}x",
            },
            {
                "strategy": "scheduler, 4 workers",
                "wall_seconds": f"{pooled_wall:.3f}",
                "simulated_seconds": f"{pooled.schedule.makespan_seconds:.0f}",
                "cache_hit_rate": f"{pooled.cache_statistics.hit_rate:.1%}",
                "speedup": f"{pooled.schedule.speedup:.2f}x",
            },
            {
                "strategy": "scheduler, 4 workers, warm persisted cache",
                "wall_seconds": f"{warm_wall:.3f}",
                "simulated_seconds": f"{warm.schedule.makespan_seconds:.0f}",
                "cache_hit_rate": f"{warm.cache_statistics.hit_rate:.1%}",
                "speedup": f"{warm.schedule.speedup:.2f}x",
            },
        ],
        notes=(
            "identical ValidationRun documents in all four strategies; "
            f"{pooled.n_cells} cells, {len(pooled.dag)} scheduled tasks, "
            f"{pooled.cache_statistics.hits} cached builds replayed cold, "
            f"{warm.cache_statistics.hits} replayed from the persisted cache "
            f"(cold wall {pooled_wall:.3f}s vs warm wall {warm_wall:.3f}s)"
        ),
    )


def _shared_system(experiment_builder):
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    system.register_experiment(experiment_builder())
    return system


def _zeus():
    return build_zeus_experiment(scale=0.2, shared_externals=True)


def _hermes():
    return build_hermes_experiment(scale=0.25, shared_externals=True)


def _run_campaign(system):
    return system.submit(
        CampaignSpec(
            configuration_keys=tuple(CONFIGURATIONS),
            workers=4,
            persist_spec=False,
        )
    ).result()


def test_shared_external_campaign(benchmark):
    """Cross-experiment warm start through the content-addressed cache.

    Two experiments pin the same external packages.  The scenario compares a
    cold HERMES campaign against a HERMES campaign warm-started from a ZEUS
    installation's persisted build-cache journal: the shared externals are
    donated across the experiment boundary, so HERMES compiles only its own
    packages.
    """
    start = time.perf_counter()
    donor_system = _shared_system(_zeus)
    donor = _run_campaign(donor_system)
    donor_wall = time.perf_counter() - start
    appended = donor_system.persist_build_cache()
    assert appended > 0

    start = time.perf_counter()
    cold = _run_campaign(_shared_system(_hermes))
    cold_wall = time.perf_counter() - start

    start = time.perf_counter()
    warm_system = _shared_system(_hermes)
    warm_system.restore_build_cache(donor_system.storage)
    warm = _run_campaign(warm_system)
    same_experiment_warm_wall = time.perf_counter() - start

    def _cross_experiment_warm():
        system = _shared_system(_hermes)
        system.restore_build_cache(donor_system.storage)
        return _run_campaign(system)

    start = time.perf_counter()
    cross = benchmark.pedantic(_cross_experiment_warm, rounds=1, iterations=1)
    cross_wall = time.perf_counter() - start

    n_shared = len(shared_external_packages("HERMES")) * len(CONFIGURATIONS)
    # Each shared external was donated by ZEUS once per configuration.
    assert cross.cache_statistics.shared_hits == n_shared
    assert cross.cache_statistics.donated_by_experiment == {"ZEUS": n_shared}
    # HERMES's own packages still compile; only the externals are shared.
    assert 0 < cross.cache_statistics.hits < (
        cross.cache_statistics.hits + cross.cache_statistics.misses
    )
    # Warm output stays bit-identical to the cold campaign.
    assert [run.to_document() for run in cross.runs()] == [
        run.to_document() for run in cold.runs()
    ]

    def _row(strategy, campaign, wall):
        statistics = campaign.cache_statistics
        return {
            "strategy": strategy,
            "wall_seconds": f"{wall:.3f}",
            "cache_hit_rate": f"{statistics.hit_rate:.1%}",
            "shared_hits": statistics.shared_hits,
            "shared_hit_rate": f"{statistics.shared_hit_rate:.1%}",
        }

    emit(
        "Scheduler-shared-externals",
        "Cross-experiment build sharing via content-addressed cache keys "
        f"({len(CONFIGURATIONS)} configurations, "
        f"{len(shared_external_packages('HERMES'))} shared externals)",
        [
            _row("ZEUS donor campaign (cold)", donor, donor_wall),
            _row("HERMES cold", cold, cold_wall),
            _row(
                "HERMES warm from ZEUS journal", warm,
                same_experiment_warm_wall,
            ),
            _row("HERMES warm from ZEUS journal (benchmarked)", cross, cross_wall),
        ],
        notes=(
            f"the donor journal appended {appended} entries; the warm HERMES "
            f"campaigns received {cross.cache_statistics.shared_hits} "
            "cross-experiment hits and compiled each shared external zero "
            "times (bit-identical run documents to the cold campaign)"
        ),
    )


def test_history_ledger_ingest_and_query(benchmark, tmp_path):
    """Micro-benchmark of the validation history ledger.

    Measures the three operations a production monitoring loop performs on
    every campaign: ingesting events into the append-only journal,
    re-mounting the ledger from a persisted storage (journal replay + index
    rebuild over segment files), and the longitudinal queries (trends,
    campaign diff, regression classification).
    """
    import json
    import os

    from repro.environment.evolution import (
        EVENT_EXTERNAL_RELEASE,
        EnvironmentEvent,
    )
    from repro.history import (
        RegressionDetector,
        ValidationEvent,
        ValidationHistoryLedger,
        diff_campaigns,
        health_trends,
    )
    from repro.storage.common_storage import CommonStorage

    N_CAMPAIGNS = 20
    EXPERIMENTS = ("ZEUS", "H1", "HERMES")
    BREAK_AFTER = 14  # campaigns before the simulated evolution event

    def synthetic_event(index, campaign, experiment, key, status):
        return ValidationEvent(
            run_id=f"sp-{index:06d}",
            campaign_id=f"campaign-{campaign:04d}",
            experiment=experiment,
            configuration_key=key,
            configuration_fingerprint=(
                "fp-after" if campaign > BREAK_AFTER else "fp-before"
            ),
            status=status,
            n_passed=40 if status == "passed" else 37,
            n_failed=0 if status == "passed" else 3,
            n_skipped=0,
            failed_tests=() if status == "passed" else ("t-a", "t-b", "t-c"),
            diagnostics_digest="" if status == "passed" else "digest-root6",
            cache_provenance="warm" if campaign > 1 else "cold",
            backend="simulated",
            logical_timestamp=1356998400 + campaign * 86400,
            description="bench",
        )

    storage = CommonStorage()
    ledger = ValidationHistoryLedger(storage)

    def ingest_all():
        index = 0
        for campaign in range(1, N_CAMPAIGNS + 1):
            for experiment in EXPERIMENTS:
                for key in CONFIGURATIONS:
                    index += 1
                    status = (
                        "failed"
                        if campaign > BREAK_AFTER and key == CONFIGURATIONS[0]
                        else "passed"
                    )
                    ledger.record_validation(
                        synthetic_event(index, campaign, experiment, key, status)
                    )
        return index

    start = time.perf_counter()
    n_events = ingest_all()
    ingest_wall = time.perf_counter() - start
    ledger.record_evolution(
        EnvironmentEvent(
            year=2014, kind=EVENT_EXTERNAL_RELEASE, subject="ROOT-6.02",
            detail="bench evolution",
        ),
        1356998400 + BREAK_AFTER * 86400 + 3600,
    )

    start = time.perf_counter()
    storage.persist(str(tmp_path))
    persist_wall = time.perf_counter() - start
    segment_files = len(os.listdir(tmp_path / ValidationHistoryLedger.NAMESPACE))

    start = time.perf_counter()
    remounted = benchmark.pedantic(
        lambda: ValidationHistoryLedger.open(CommonStorage.load(str(tmp_path))),
        rounds=1, iterations=1,
    )
    remount_wall = time.perf_counter() - start
    assert len(remounted) == n_events

    start = time.perf_counter()
    trends = health_trends(remounted)
    diff = diff_campaigns(
        remounted, "campaign-0001", f"campaign-{N_CAMPAIGNS:04d}"
    )
    findings = RegressionDetector(remounted).findings()
    query_wall = time.perf_counter() - start

    regressions = [finding for finding in findings if finding.is_regression]
    assert len(trends) == len(EXPERIMENTS)
    assert len(diff.broke) == len(EXPERIMENTS)
    assert len(regressions) == len(EXPERIMENTS)
    assert all(
        finding.suspected_event is not None
        and finding.suspected_event.subject == "ROOT-6.02"
        for finding in regressions
    )

    emit(
        "History-ledger",
        f"Validation history ledger: ingest, remount and query "
        f"({n_events} events, {N_CAMPAIGNS} campaigns, "
        f"{len(EXPERIMENTS) * len(CONFIGURATIONS)} cells)",
        [
            {
                "operation": "ingest (journal append + index)",
                "wall_seconds": f"{ingest_wall:.3f}",
                "per_event_us": f"{ingest_wall / n_events * 1e6:.0f}",
            },
            {
                "operation": f"persist to disk ({segment_files} segment file(s))",
                "wall_seconds": f"{persist_wall:.3f}",
                "per_event_us": f"{persist_wall / n_events * 1e6:.0f}",
            },
            {
                "operation": "remount (load + journal replay + reindex)",
                "wall_seconds": f"{remount_wall:.3f}",
                "per_event_us": f"{remount_wall / n_events * 1e6:.0f}",
            },
            {
                "operation": "trends + diff + regression classification",
                "wall_seconds": f"{query_wall:.3f}",
                "per_event_us": f"{query_wall / n_events * 1e6:.0f}",
            },
        ],
        notes=(
            f"{len(regressions)} regression(s) found and all attributed to "
            "the injected ROOT-6.02 evolution event; the journal persisted "
            f"as {segment_files} segment file(s) instead of "
            f"{n_events + 1} per-record files"
        ),
    )
