"""Figure 3 — summary of the validation tests carried out by the HERA experiments.

Figure 3 of the paper shows, for ZEUS (orange, top), H1 (blue, middle) and
HERMES (red, bottom), how their validation tests (grouped by process) fare
under the different configurations of operating system and external
dependencies, after more than 300 validation runs in total.

The benchmark replays a compressed version of that campaign: the three
experiments (scaled-down but structurally complete suites) are validated
repeatedly on all five standard sp-system configurations until more than 300
runs have accumulated, and the resulting experiment x process x configuration
matrix is printed.  Expected shape: predominantly green, with the problems
concentrated in the SL6/64bit migration column — exactly what the paper
reports ("the tests performed so far ... have already identified and helped
to solve several long-standing bugs" during the SL6 migration).
"""

import pytest

from repro.core.spsystem import SPSystem
from repro.reporting.summary import ValidationSummaryBuilder

from conftest import emit, emit_text


#: Number of repeated campaign rounds; 3 experiments x 5 configurations x 21
#: rounds = 315 recorded validation runs, comfortably above the >300 quoted.
CAMPAIGN_ROUNDS = 21


def run_campaign(experiments, rounds=CAMPAIGN_ROUNDS):
    """Validate every experiment on every configuration *rounds* times."""
    system = SPSystem()
    system.provision_standard_images()
    for experiment in experiments:
        system.register_experiment(experiment)
    runs = []
    for round_index in range(rounds):
        for experiment in experiments:
            results = system.validate_everywhere(
                experiment.name,
                description=f"{experiment.name} regular validation round {round_index:02d}",
            )
            runs.extend(result.run for result in results)
    return system, runs


def test_figure3_hera_validation_summary(benchmark, hera_experiments_small):
    system, runs = benchmark.pedantic(
        run_campaign, args=(hera_experiments_small,), rounds=1, iterations=1
    )

    # "In total more than 300 runs over sets of pre-defined tests have been
    # performed within the sp-system by the HERA experiments."
    assert system.total_runs() > 300
    assert system.total_runs() == len(runs)

    builder = ValidationSummaryBuilder()
    matrix = builder.from_runs(runs)

    # The matrix is stacked ZEUS / H1 / HERMES over the five configurations.
    assert matrix.experiments == ["ZEUS", "H1", "HERMES"]
    assert len(matrix.configurations) == 5
    # Most cells are green; the problems are confined to the SL6 migration.
    assert matrix.overall_pass_fraction() > 0.9
    problem_configurations = {cell.configuration_key for cell in matrix.problem_cells()}
    assert problem_configurations == {"SL6_64bit_gcc4.4"}

    headline = builder.headline_numbers(system.catalog)
    emit(
        "Figure3-headline",
        "Headline numbers of the HERA validation campaign",
        [
            {"quantity": "validation runs recorded (paper: >300)", "value": headline["total_runs"]},
            {"quantity": "experiments", "value": headline["experiments"]},
            {"quantity": "environment configurations", "value": headline["configurations"]},
            {"quantity": "individual test executions", "value": headline["total_test_executions"]},
            {"quantity": "failing test executions", "value": headline["total_failures"]},
        ],
    )
    emit_text(
        "Figure3",
        "Summary of the validation tests carried out by the HERA experiments",
        matrix.render_text(),
    )
    emit(
        "Figure3-cells",
        "Per experiment / process / configuration cell contents",
        matrix.rows(),
        notes="status 'problems' marks the cells drawn red in the paper's figure",
    )
