"""Section 3.1 — the sp-system machine configurations and client requirements.

The paper states: "Within the current sp-system there are virtual machines
with five different configurations: SL5/32bit with gcc4.1 and gcc4.4,
SL5/64bit with gcc4.1 and gcc4.4, SL6/64bit with gcc4.4.  In addition, the
set of external software required by the experiments is also installed, for
example the ROOT versions used by the experiments: 5.26, 5.28, 5.30, 5.32,
and 5.34. ... The only requirement of a new machine is to have access to the
common sp-system storage ... as well as the ability to run a cron-job on the
client."

The benchmark provisions exactly those images, verifies the ROOT version list,
and demonstrates that adding a new client (a batch worker node) requires only
the two documented ingredients.
"""

import pytest

from repro.environment.configuration import sp_system_root_versions
from repro.environment.external import ExternalSoftwareCatalog
from repro.virtualization.provisioning import ProvisioningService


def provision_everything():
    """Provision the standard images, start clients and attach worker nodes."""
    service = ProvisioningService()
    image_report = service.provision_standard_images()
    client_report = service.start_validation_clients()
    sl6 = next(
        image.configuration for image in service.hypervisor.images()
        if image.configuration.key == "SL6_64bit_gcc4.4"
    )
    batch = service.attach_batch_worker("batch-worker-042", sl6)
    grid = service.attach_grid_worker("grid-worker-117", sl6)
    return service, image_report, client_report, batch, grid


def test_sp_system_configurations_and_clients(benchmark):
    service, image_report, client_report, batch, grid = benchmark.pedantic(
        provision_everything, rounds=1, iterations=1
    )

    # The five configurations named in the paper.
    expected_keys = {
        "SL5_32bit_gcc4.1",
        "SL5_32bit_gcc4.4",
        "SL5_64bit_gcc4.1",
        "SL5_64bit_gcc4.4",
        "SL6_64bit_gcc4.4",
    }
    provisioned = {image.configuration.key for image in service.hypervisor.images()}
    assert provisioned == expected_keys
    assert image_report.n_images == 5
    assert client_report.n_clients == 5

    # The ROOT versions used by the experiments are available in the catalogue.
    catalog = ExternalSoftwareCatalog()
    available_root = {entry.version for entry in catalog.versions_of("ROOT")}
    for version in sp_system_root_versions():
        assert version in available_root

    # New clients only need storage access and a cron capability.
    for client in (batch, grid):
        assert client.meets_requirements()
        assert client.missing_requirements() == []

    from conftest import emit

    rows = [
        {
            "machine": image.name,
            "operating system": f"{image.configuration.operating_system.name}/"
                                 f"{image.configuration.word_size}bit",
            "compiler": image.configuration.compiler.name,
            "ROOT": image.configuration.external("ROOT").version,
            "kind": "virtual machine image",
        }
        for image in service.hypervisor.images()
    ]
    rows.extend(
        {
            "machine": client.name,
            "operating system": f"{client.configuration.operating_system.name}/"
                                 f"{client.configuration.word_size}bit",
            "compiler": client.configuration.compiler.name,
            "ROOT": client.configuration.external("ROOT").version,
            "kind": f"{client.kind.value} (storage + cron only)",
        }
        for client in service.external_clients()
    )
    rows.append(
        {
            "machine": "ROOT versions installed for the experiments",
            "operating system": "-",
            "compiler": "-",
            "ROOT": ", ".join(sp_system_root_versions()),
            "kind": "external software",
        }
    )
    emit(
        "Section3.1-configurations",
        "sp-system machine configurations (five VM images plus added clients)",
        rows,
    )
