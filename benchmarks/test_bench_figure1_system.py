"""Figure 1 — structure of the validation system.

Figure 1 of the paper illustrates the sp-system with its three clearly
separated inputs (experiment software, external dependencies, operating
system + compiler), the virtual machine images hosting the different
configurations and the common storage connecting everything.  The benchmark
builds that installation, registers the three HERA experiments and prints the
resulting inventory: one row per VM configuration with its separated inputs,
plus the experiment software registered on top.
"""

import pytest

from repro.core.spsystem import SPSystem

from conftest import emit


def build_sp_system(experiments):
    """Provision the standard images and register the HERA experiments."""
    system = SPSystem()
    system.provision_standard_images()
    for experiment in experiments:
        system.register_experiment(experiment)
    system.provisioning.start_validation_clients()
    return system


def test_figure1_validation_system_structure(benchmark, hera_experiments_small):
    system = benchmark.pedantic(
        build_sp_system, args=(hera_experiments_small,), rounds=1, iterations=1
    )

    description = system.describe()
    # The three separated inputs are visible for every configuration.
    assert len(description["configurations"]) == 5
    for configuration in description["configurations"]:
        assert set(configuration) == {"operating_system", "word_size", "compiler", "externals"}
        assert configuration["externals"]
    # One image per configuration, one validation client per image.
    assert len(system.hypervisor.images()) == 5
    assert len(system.hypervisor.running_clients()) == 5
    # All clients satisfy the two documented requirements (storage + cron).
    for client in system.provisioning.all_clients():
        assert client.meets_requirements()
    # The three experiments sit on top as the third, separate input.
    assert set(description["experiments"]) == {"H1", "ZEUS", "HERMES"}

    rows = []
    for configuration in description["configurations"]:
        externals = ", ".join(
            f"{product} {version}"
            for product, version in sorted(configuration["externals"].items())
        )
        rows.append(
            {
                "input: operating system": (
                    f"{configuration['operating_system']} / "
                    f"{configuration['word_size']} bit"
                ),
                "input: compiler": configuration["compiler"],
                "input: external dependencies": externals,
                "virtual machine image": f"vm-{configuration['operating_system']}_"
                                          f"{configuration['word_size']}bit_"
                                          f"{configuration['compiler']}",
            }
        )
    for name, info in sorted(description["experiments"].items()):
        rows.append(
            {
                "input: operating system": "-",
                "input: compiler": "-",
                "input: external dependencies": f"experiment software: {name}",
                "virtual machine image": (
                    f"{info['packages']} packages, {info['tests']} tests, "
                    f"DPHEP level {info['preservation_level']}"
                ),
            }
        )
    emit(
        "Figure1",
        "The validation system: separated inputs hosted as virtual machine images",
        rows,
        notes=(
            "Each VM image combines an OS/compiler with the installed external "
            "dependencies; the experiment software is the third, separate input."
        ),
    )
