"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one ablation
described in DESIGN.md) and prints the corresponding rows/series, so that
running ``pytest benchmarks/ --benchmark-only -s`` reproduces the content of
the evaluation section.  The timing numbers reported by pytest-benchmark are
secondary; the printed rows are the reproduction artefact and are also
collected into ``benchmarks/_results/`` as JSON for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

import pytest


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "_results")
_BENCHMARKS_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ with the ``bench`` marker.

    Tier-1 CI can then deselect the (slow) reproduction benchmarks with
    ``pytest -m "not bench"`` while a plain ``pytest`` run keeps collecting
    them as before.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCHMARKS_DIR + os.sep):
            item.add_marker(pytest.mark.bench)


def emit(experiment_id: str, title: str, rows: Sequence[Dict[str, object]],
         notes: str = "") -> None:
    """Print the rows of one reproduced table/figure and persist them as JSON."""
    from repro.reporting.export import rows_to_text

    print()
    print(f"=== {experiment_id}: {title} ===")
    if notes:
        print(notes)
    print(rows_to_text(list(rows)))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id.lower().replace(' ', '_')}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"title": title, "notes": notes, "rows": list(rows)}, handle, indent=2)


def emit_text(experiment_id: str, title: str, text: str) -> None:
    """Print a preformatted reproduction artefact (e.g. the figure-3 matrix)."""
    print()
    print(f"=== {experiment_id}: {title} ===")
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id.lower().replace(' ', '_')}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def hera_experiments_small():
    """Scaled-down HERA experiment definitions used by run-heavy benchmarks."""
    from repro.experiments import build_hera_experiments

    return build_hera_experiments(scale=0.12)
