#!/usr/bin/env bash
# CI entry point for the sp-system reproduction.
#
# Mirrors the staged check layout of the pyhc-actions compliance tooling:
# cheap structural audits first, then the tier-1 suite, then the targeted
# backend-parity shard, then the bench-trend gate and the headless example
# smoke runs.  Stages:
#
#   1. bench marker audit — every test below benchmarks/ must carry the
#      `bench` marker, or the tier-1 deselection (-m "not bench") would
#      silently start running paper-reproduction benchmarks in CI.
#   2. history-ledger write audit — the `history` storage namespace is
#      owned by the ValidationHistoryLedger: a raw put() into it would
#      bypass the journal's idempotence and index bookkeeping, so no
#      module outside src/repro/history/ may write the namespace literal.
#   3. scheduler monotonic-clock audit — the wall-clock backends time
#      their dispatch with time.monotonic(); a time.time() call in
#      src/repro/scheduler/ would make schedules jump with NTP
#      adjustments, so the wall clock is banned there outright.
#   4. lifecycle-purity audit — automated intervention tickets and history
#      ingestion are plugin-layer concerns: no module outside
#      src/repro/plugins (and the owning core/history modules) may
#      construct an InterventionTracker or call ingest_cycle directly.
#   5. service-purity audit — the validation service is a pure queueing
#      layer: no module under src/repro/service/ may construct an
#      execution backend or a CampaignScheduler (all execution flows
#      through SPSystem.submit) or call wall-clock time.time() (rate
#      limiting runs on an injectable monotonic clock).
#   6. telemetry-purity audit — the telemetry subsystem observes, never
#      participates: no time.time() under src/repro/telemetry/ (the
#      registry and tracer run on injectable monotonic clocks), and the
#      science layers (src/repro/hepdata/, src/repro/environment/) must
#      not import repro.telemetry at all.
#   7. tier-1 — the documented fast suite (ROADMAP.md):
#      pytest -x -q -m "not bench"
#   8. backend parity — the determinism suite re-run with an explicit
#      backend shard (REPRO_PARITY_BACKENDS=simulated,threads,processes):
#      pins that the process-pool backend, whose builds cross a pickle
#      boundary, stays bit-identical even when CI trims the default
#      all-backend matrix.
#   9. bench-trends gate — `repro bench-trends check` compares the latest
#      recorded benchmark trend point of every series against the
#      trailing median and fails on a regression past the threshold
#      (a fresh checkout with no recorded series passes trivially).
#  10. examples — headless smoke run of every examples/*.py script:
#      pytest -m examples
#
# Usage: scripts/ci.sh [--skip-examples]

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== stage 1/10: bench marker audit =="
# Selecting "not bench" below benchmarks/ must collect nothing; any test id
# in the output is a benchmark that escaped the marker.
unmarked=$(python -m pytest benchmarks/ -m "not bench" --collect-only -q 2>/dev/null | grep -c "::" || true)
if [ "${unmarked}" -ne 0 ]; then
    echo "error: ${unmarked} test(s) under benchmarks/ lack the 'bench' marker:" >&2
    python -m pytest benchmarks/ -m "not bench" --collect-only -q 2>/dev/null | grep "::" >&2 || true
    exit 1
fi
echo "ok: every benchmarks/ test carries the bench marker"

echo "== stage 2/10: history-ledger write audit =="
# Writers must go through the ledger API: no raw put into the 'history'
# namespace (and no string-literal namespace handle to put through) outside
# the owning package.  The same rule is enforced by tests/test_tooling_ci.py.
violations=$(grep -rnE "(put|create_namespace|namespace)\(\s*[\"']history[\"']" src --include='*.py' | grep -v "^src/repro/history/" || true)
if [ -n "${violations}" ]; then
    echo "error: raw 'history' namespace access outside src/repro/history/:" >&2
    echo "${violations}" >&2
    echo "write through ValidationHistoryLedger (repro.history.ledger) instead" >&2
    exit 1
fi
echo "ok: every history-namespace writer goes through the ledger API"

echo "== stage 3/10: scheduler monotonic-clock audit =="
# Backend timelines are offsets from a campaign-local origin; time.time()
# would tie them to a clock that NTP can step.  Only time.monotonic() is
# allowed anywhere under src/repro/scheduler/.  The same rule is enforced
# by tests/test_tooling_ci.py.
clock_violations=$(grep -rn "time\.time(" src/repro/scheduler --include='*.py' || true)
if [ -n "${clock_violations}" ]; then
    echo "error: wall-clock time.time() call in src/repro/scheduler/:" >&2
    echo "${clock_violations}" >&2
    echo "use time.monotonic() for scheduler timing" >&2
    exit 1
fi
echo "ok: the scheduler times itself with time.monotonic() only"

echo "== stage 4/10: lifecycle-purity audit =="
# Automated tickets and history ingestion flow through the plugin layer:
# no module outside src/repro/plugins (and the owning core/history modules)
# may construct an InterventionTracker or call ingest_cycle directly, or
# the lifecycle bus would stop being the single reporting path.  The same
# rule is enforced by tests/test_tooling_ci.py.
lifecycle_violations=$(grep -rnE "InterventionTracker\(|ingest_cycle\(" src --include='*.py' | grep -vE "^src/repro/(plugins/|history/|core/intervention\.py)" || true)
if [ -n "${lifecycle_violations}" ]; then
    echo "error: direct tracker construction or history ingestion outside the plugin layer:" >&2
    echo "${lifecycle_violations}" >&2
    echo "route it through repro.plugins (new_intervention_tracker / HistoryRecorderPlugin) instead" >&2
    exit 1
fi
echo "ok: tickets and history ingestion flow through the plugin layer"

echo "== stage 5/10: service-purity audit =="
# The daemon layer queues, schedules and bills -- it never executes. A
# backend or scheduler construction under src/repro/service/ would open a
# second execution path around SPSystem.submit; a time.time() call would
# tie rate limiting to a steppable wall clock.  The same rule is enforced
# by tests/test_tooling_ci.py.
service_violations=$(grep -rnE "[A-Za-z_]*Backend\(|CampaignScheduler\(|execution_backend\(|time\.time\(" src/repro/service --include='*.py' || true)
if [ -n "${service_violations}" ]; then
    echo "error: execution or wall-clock call under src/repro/service/:" >&2
    echo "${service_violations}" >&2
    echo "dispatch through SPSystem.submit and time with a monotonic clock" >&2
    exit 1
fi
echo "ok: the service layer queues and bills; only SPSystem.submit executes"

echo "== stage 6/10: telemetry-purity audit =="
# Telemetry observes, it never participates.  The registry and tracer run
# on injectable monotonic clocks — a time.time() call under
# src/repro/telemetry/ would tie metric timestamps to a steppable wall
# clock.  And the science layers stay instrumentation-free: nothing under
# src/repro/hepdata/ or src/repro/environment/ may import repro.telemetry,
# or instrumentation could start influencing the numbers it reports.  The
# same rules are enforced by tests/test_tooling_ci.py.
telemetry_clock_violations=$(grep -rn "time\.time(" src/repro/telemetry --include='*.py' || true)
if [ -n "${telemetry_clock_violations}" ]; then
    echo "error: wall-clock time.time() call in src/repro/telemetry/:" >&2
    echo "${telemetry_clock_violations}" >&2
    echo "use time.monotonic() (or the injected clock) for telemetry timing" >&2
    exit 1
fi
telemetry_import_violations=$(grep -rnE "(from|import)[[:space:]]+repro\.telemetry" src/repro/hepdata src/repro/environment --include='*.py' || true)
if [ -n "${telemetry_import_violations}" ]; then
    echo "error: repro.telemetry imported from a science layer:" >&2
    echo "${telemetry_import_violations}" >&2
    echo "hepdata/ and environment/ must stay instrumentation-free" >&2
    exit 1
fi
echo "ok: telemetry runs on monotonic clocks and the science layers stay instrumentation-free"

echo "== stage 7/10: tier-1 test suite =="
python -m pytest -x -q -m "not bench"

echo "== stage 8/10: backend parity (explicit shard) =="
# The tier-1 run above already covers the default all-backend matrix; this
# shard pins that the env knob itself works and that the pickle-crossing
# process backend passes in isolation from the sharded one.
REPRO_PARITY_BACKENDS=simulated,threads,processes \
    python -m pytest -q tests/test_scheduler_determinism.py \
    -k "BackendParity or HistoryRecordingBitIdentity"

echo "== stage 9/10: bench-trends gate =="
# Gate on the recorded benchmark trend series: the latest point of every
# series must stay within the threshold of the trailing median.  A fresh
# checkout with no recorded series passes trivially.
python -m repro.cli bench-trends check

if [ "${1:-}" = "--skip-examples" ]; then
    echo "== stage 10/10: examples smoke run skipped =="
    exit 0
fi

echo "== stage 10/10: examples smoke run =="
python -m pytest -q -m examples

echo "CI checks passed."
